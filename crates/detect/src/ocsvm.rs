use std::sync::Arc;

use lgo_series::window::flatten;
use lgo_series::StandardScaler;
use lgo_tensor::vector::dot;
use lgo_tensor::Matrix;

use crate::detector::{AnomalyDetector, ScoreScratch, Window};
use crate::error::DetectError;

/// Kernel functions for the one-class SVM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `K(u, v) = u · v`
    Linear,
    /// `K(u, v) = exp(-γ ‖u − v‖²)`
    Rbf {
        /// Bandwidth γ.
        gamma: f64,
    },
    /// `K(u, v) = tanh(γ u · v + coef0)` — the paper's kernel
    /// (γ = auto = 1/n_features, coef0 = 10).
    Sigmoid {
        /// Slope γ.
        gamma: f64,
        /// Offset added inside the tanh.
        coef0: f64,
    },
    /// `K(u, v) = (γ u · v + coef0)^degree`
    Polynomial {
        /// Slope γ.
        gamma: f64,
        /// Offset.
        coef0: f64,
        /// Polynomial degree.
        degree: u32,
    },
}

impl Kernel {
    /// Evaluates the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn eval(&self, u: &[f64], v: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(u, v),
            Kernel::Rbf { gamma } => {
                let d2: f64 = u.iter().zip(v).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
            Kernel::Sigmoid { gamma, coef0 } => (gamma * dot(u, v) + coef0).tanh(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * dot(u, v) + coef0).powi(degree as i32),
        }
    }
}

/// Configuration of the ν-one-class SVM, defaulting to the paper's
/// Appendix-B parameters (`OneClassSVM(kernel="sigmoid", gamma="auto",
/// coef0=10, nu=0.5, tol=0.001)`). `gamma = None` means scikit-learn's
/// `auto`: `1 / n_features`, resolved at fit time.
#[derive(Debug, Clone, PartialEq)]
pub struct OcSvmConfig {
    /// ν ∈ (0, 1]: upper bound on the training outlier fraction and lower
    /// bound on the support-vector fraction.
    pub nu: f64,
    /// Kernel family; the auto variants of [`KernelSpec`] resolve
    /// `gamma = 1 / n_features` at fit time.
    pub kernel: KernelSpec,
    /// KKT-violation tolerance for SMO termination.
    pub tol: f64,
    /// Hard cap on SMO iterations (`None` = scikit's −1, i.e. unlimited, in
    /// practice bounded by a large safety value).
    pub max_iter: Option<usize>,
    /// Optional cap on training windows (uniform stride subsample); keeps
    /// the O(n²) kernel matrix affordable on big cohorts.
    pub max_samples: Option<usize>,
    /// Empirical decision-threshold calibration: the anomaly cutoff is set
    /// at this quantile of the *training* decision values instead of the
    /// raw `f(x) < 0` rule. This keeps the detector usable when the
    /// sigmoid kernel saturates (`tanh(γ·u·v + 10) ≈ 1` over most of the
    /// input range, which collapses `f` toward a constant — the ordering of
    /// decision values stays informative while the zero crossing does not).
    /// `None` uses the classical sign rule.
    pub calibration_quantile: Option<f64>,
}

/// A kernel whose γ may be deferred to fit time (`gamma = auto`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelSpec {
    /// Fully specified kernel.
    Fixed(Kernel),
    /// Sigmoid kernel with γ = 1/n_features resolved at fit time.
    SigmoidAuto {
        /// Offset added inside the tanh.
        coef0: f64,
    },
    /// RBF kernel with γ = 1/n_features resolved at fit time.
    RbfAuto,
}

impl Default for OcSvmConfig {
    fn default() -> Self {
        Self {
            nu: 0.5,
            kernel: KernelSpec::SigmoidAuto { coef0: 10.0 },
            tol: 1e-3,
            max_iter: None,
            max_samples: Some(1500),
            calibration_quantile: Some(0.10),
        }
    }
}

/// ν-one-class SVM (Schölkopf et al., 2001) trained with SMO — the paper's
/// second anomaly detector.
///
/// Trained on benign windows only; the decision function
/// `f(x) = Σ αᵢ K(xᵢ, x) − ρ` is negative for anomalies.
///
/// # Examples
///
/// ```
/// use lgo_detect::{AnomalyDetector, OcSvmConfig, OneClassSvm, KernelSpec, Kernel};
///
/// let benign: Vec<Vec<Vec<f64>>> = (0..40)
///     .map(|i| vec![vec![(i as f64 * 0.7).sin(), (i as f64 * 0.7).cos()]])
///     .collect();
/// let cfg = OcSvmConfig {
///     kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 1.0 }),
///     nu: 0.1,
///     ..OcSvmConfig::default()
/// };
/// let svm = OneClassSvm::fit(&benign, &cfg);
/// // A point far outside the unit circle is anomalous.
/// assert!(svm.is_anomalous(&vec![vec![5.0, 5.0]]));
/// ```
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    /// Support vectors as rows of one flat matrix — contiguous storage for
    /// the batched scoring path ([`AnomalyDetector::score_batch`]).
    support: Matrix,
    alphas: Vec<f64>,
    rho: f64,
    kernel: Kernel,
    iterations: usize,
    scaler: StandardScaler,
    threshold: f64,
}

impl OneClassSvm {
    /// Trains on benign windows with SMO. Windows containing non-finite
    /// values are dropped (see [`try_fit`](Self::try_fit)).
    ///
    /// # Panics
    ///
    /// Panics if `windows` is empty, `nu` is outside `(0, 1]`, or windows
    /// are ragged.
    pub fn fit(windows: &[Window], config: &OcSvmConfig) -> Self {
        match Self::try_fit(windows, config) {
            Ok(svm) => svm,
            // lint: allow(L1): documented panicking wrapper; try_fit is the checked path
            Err(e) => panic!("OneClassSvm: {e}"),
        }
    }

    /// Fallible [`fit`](Self::fit): windows containing non-finite values
    /// (degraded sensor data) are dropped before training.
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::NoTrainingWindows`] on empty input,
    /// [`DetectError::InvalidNu`] for `nu` outside `(0, 1]`,
    /// [`DetectError::NoFiniteWindows`] when every window is corrupt, and
    /// [`DetectError::InconsistentShapes`] on mismatched window shapes.
    pub fn try_fit(windows: &[Window], config: &OcSvmConfig) -> Result<Self, DetectError> {
        let _span = lgo_trace::span("detect/ocsvm/fit");
        if windows.is_empty() {
            return Err(DetectError::NoTrainingWindows);
        }
        if !(config.nu > 0.0 && config.nu <= 1.0) {
            return Err(DetectError::InvalidNu { nu: config.nu });
        }
        let mut points: Vec<Vec<f64>> = windows
            .iter()
            .map(|w| flatten(w))
            .filter(|p| p.iter().all(|v| v.is_finite()))
            .collect();
        if points.is_empty() {
            return Err(DetectError::NoFiniteWindows);
        }
        if let Some(cap) = config.max_samples {
            points = crate::subsample::subsample_cap(points, cap);
        }
        lgo_trace::counter("detect/ocsvm/fits", 1);
        lgo_trace::counter("detect/ocsvm/fit_points", points.len() as u64);
        let width = points[0].len();
        if !points.iter().all(|p| p.len() == width) {
            return Err(DetectError::InconsistentShapes);
        }
        // Standardize features: dot-product kernels (sigmoid/polynomial) are
        // meaningless on raw mixed-unit channels.
        let mut scaler = StandardScaler::new();
        scaler.try_fit(&points)?;
        let points = scaler.transform(&points)?;
        let kernel = match config.kernel {
            KernelSpec::Fixed(k) => k,
            KernelSpec::SigmoidAuto { coef0 } => Kernel::Sigmoid {
                gamma: 1.0 / width as f64,
                coef0,
            },
            KernelSpec::RbfAuto => Kernel::Rbf {
                gamma: 1.0 / width as f64,
            },
        };

        let l = points.len();
        let upper = 1.0 / (config.nu * l as f64);

        // Standardized points as one flat matrix: the Gram computation,
        // the SMO loop, and (later) the support set all want contiguous
        // rows.
        let pts = Matrix::from_rows(&points.iter().map(Vec::as_slice).collect::<Vec<_>>());

        // Kernel (Gram) matrix, l <= max_samples keeps this affordable.
        // The optimized path funnels through the shared KernelCache — one
        // tiled computation per distinct (kernel, roster), reused across
        // the whole strategy × detector grid. The legacy path keeps the
        // original per-pair fan-out for exp_perf's before/after timing.
        // Both produce bit-identical matrices (each entry is a pure
        // function of its pair), pinned by tests.
        let q: Arc<Matrix> = if crate::perf::optimized() {
            crate::kernel_cache::lock_global().gram(kernel, &pts)
        } else {
            let rows = lgo_runtime::par_map_indexed(l, |i| {
                (i..l)
                    .map(|j| kernel.eval(pts.row(i), pts.row(j)))
                    .collect::<Vec<f64>>()
            });
            let mut q = Matrix::zeros(l, l);
            for (i, row) in rows.into_iter().enumerate() {
                for (off, v) in row.into_iter().enumerate() {
                    let j = i + off;
                    let s = q.as_mut_slice();
                    s[i * l + j] = v;
                    s[j * l + i] = v;
                }
            }
            Arc::new(q)
        };

        // libsvm's one-class initialization: the first ⌊νl⌋ points get the
        // box maximum, the next gets the fractional remainder.
        let mut alpha = vec![0.0; l];
        let n_full = (config.nu * l as f64).floor() as usize;
        for a in alpha.iter_mut().take(n_full.min(l)) {
            *a = upper;
        }
        if n_full < l {
            alpha[n_full] = config.nu * l as f64 - n_full as f64;
            alpha[n_full] *= upper;
        }

        // Gradient g_i = (Qα)_i, over contiguous Gram rows.
        let mut g: Vec<f64> = (0..l)
            .map(|i| q.row(i).iter().zip(&alpha).map(|(&qv, &a)| qv * a).sum())
            .collect();

        let max_iter = config.max_iter.unwrap_or(100 * l.max(100));
        let mut iterations = 0;
        while iterations < max_iter {
            // Working-set selection (first-order): i with α_i < C minimizing
            // g_i, j with α_j > 0 maximizing g_j.
            let mut i_sel: Option<usize> = None;
            let mut j_sel: Option<usize> = None;
            for t in 0..l {
                if alpha[t] < upper - 1e-12
                    && i_sel.is_none_or(|i| g[t] < g[i])
                {
                    i_sel = Some(t);
                }
                if alpha[t] > 1e-12 && j_sel.is_none_or(|j| g[t] > g[j]) {
                    j_sel = Some(t);
                }
            }
            let (Some(i), Some(j)) = (i_sel, j_sel) else {
                break;
            };
            if g[j] - g[i] < config.tol || i == j {
                break; // KKT satisfied within tolerance
            }
            // Pairwise update preserving α_i + α_j (equality constraint).
            let (qi, qj) = (q.row(i), q.row(j));
            let quad = (qi[i] + qj[j] - 2.0 * qi[j]).max(1e-12);
            let mut delta = (g[j] - g[i]) / quad;
            delta = delta.min(upper - alpha[i]).min(alpha[j]);
            if delta <= 0.0 {
                break;
            }
            alpha[i] += delta;
            alpha[j] -= delta;
            for (gt, (&qit, &qjt)) in g.iter_mut().zip(qi.iter().zip(qj)) {
                *gt += delta * (qit - qjt);
            }
            iterations += 1;
        }
        lgo_trace::record("detect/ocsvm/smo_iterations", iterations as u64);

        // ρ: average gradient over free support vectors, or the midpoint of
        // the boundary gradients when none are free.
        let free: Vec<usize> = (0..l)
            .filter(|&t| alpha[t] > 1e-12 && alpha[t] < upper - 1e-12)
            .collect();
        let rho = if !free.is_empty() {
            free.iter().map(|&t| g[t]).sum::<f64>() / free.len() as f64
        } else {
            let ub = (0..l)
                .filter(|&t| alpha[t] <= 1e-12)
                .map(|t| g[t])
                .fold(f64::INFINITY, f64::min);
            let lb = (0..l)
                .filter(|&t| alpha[t] >= upper - 1e-12)
                .map(|t| g[t])
                .fold(f64::NEG_INFINITY, f64::max);
            match (ub.is_finite(), lb.is_finite()) {
                (true, true) => (ub + lb) / 2.0,
                (true, false) => ub,
                (false, true) => lb,
                _ => 0.0,
            }
        };

        // Keep only support vectors (Σα = 1 guarantees at least one).
        let mut sv_rows: Vec<&[f64]> = Vec::new();
        let mut alphas = Vec::new();
        for (t, &a) in alpha.iter().enumerate() {
            if a > 1e-12 {
                sv_rows.push(pts.row(t));
                alphas.push(a);
            }
        }
        let support = Matrix::from_rows(&sv_rows);
        let mut svm = Self {
            support,
            alphas,
            rho,
            kernel,
            iterations,
            scaler,
            threshold: 0.0,
        };
        if let Some(q) = config.calibration_quantile {
            assert!(
                (0.0..1.0).contains(&q),
                "OneClassSvm: calibration_quantile = {q} outside [0, 1)"
            );
            let decisions: Vec<f64> = windows
                .iter()
                .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
                .map(|w| svm.try_decision_function(w))
                .collect::<Result<_, _>>()?;
            svm.threshold = lgo_series::stats::quantile(&decisions, q)
                // lint: allow(L1): at least one finite window exists (NoFiniteWindows otherwise), so decisions is nonempty
                .expect("nonempty training set");
        }
        Ok(svm)
    }

    /// ROAST-style outlier-exposure fit: benign `windows` keep the usual
    /// ν-one-class objective while `outliers` (known-adversarial windows,
    /// e.g. crafted against the more-vulnerable cohort) enter the SMO dual
    /// as a *negative class* with total box mass `outlier_slack`, pushing
    /// the margin away from them.
    ///
    /// Formulation: with signed variables `u` (positives in
    /// `[0, 1/(ν·l⁺)]`, negatives in `[−s/l⁻, 0]` where
    /// `s = outlier_slack` clamped to the feasible `1/ν − 1`), SMO solves
    /// `min ½ uᵀKu` subject to `Σu = 1`. The decision function keeps the
    /// plain-fit form `f(x) = Σ uᵢ K(xᵢ, x) − ρ`, so the signed support
    /// coefficients flow through every existing scoring path unchanged.
    /// The decision threshold is calibrated on the benign windows only,
    /// exactly like [`try_fit`](Self::try_fit).
    ///
    /// The benign×benign Gram block goes through the shared
    /// [`KernelCache`](crate::KernelCache) on the optimized path: ROAST
    /// refits grow only the outlier set, so the (large) benign block is a
    /// cache hit on every round and only the bordered outlier blocks are
    /// recomputed.
    ///
    /// With an empty (or fully corrupt) outlier set, or non-positive
    /// slack, this reduces **bit-exactly** to [`try_fit`](Self::try_fit).
    ///
    /// # Errors
    ///
    /// The same errors as [`try_fit`](Self::try_fit);
    /// [`DetectError::InconsistentShapes`] also covers outlier windows
    /// whose flattened width differs from the benign windows'.
    pub fn try_fit_with_outliers(
        windows: &[Window],
        outliers: &[Window],
        outlier_slack: f64,
        config: &OcSvmConfig,
    ) -> Result<Self, DetectError> {
        if windows.is_empty() {
            return Err(DetectError::NoTrainingWindows);
        }
        if !(config.nu > 0.0 && config.nu <= 1.0) {
            return Err(DetectError::InvalidNu { nu: config.nu });
        }
        // Feasibility: positives can carry at most 1/ν total mass, so the
        // negative class gets at most 1/ν − 1 without breaking Σu = 1.
        let slack = outlier_slack.min((1.0 / config.nu - 1.0).max(0.0));
        let mut neg: Vec<Vec<f64>> = outliers
            .iter()
            .map(|w| flatten(w))
            .filter(|p| p.iter().all(|v| v.is_finite()))
            .collect();
        if let Some(cap) = config.max_samples {
            neg = crate::subsample::subsample_cap(neg, cap);
        }
        if neg.is_empty() || slack.is_nan() || slack <= 0.0 {
            // No usable negatives: the objective is the plain one — reuse
            // the plain fit so the reduction is bit-exact.
            return Self::try_fit(windows, config);
        }
        let _span = lgo_trace::span("detect/ocsvm/fit_oe");
        let mut pos: Vec<Vec<f64>> = windows
            .iter()
            .map(|w| flatten(w))
            .filter(|p| p.iter().all(|v| v.is_finite()))
            .collect();
        if pos.is_empty() {
            return Err(DetectError::NoFiniteWindows);
        }
        if let Some(cap) = config.max_samples {
            pos = crate::subsample::subsample_cap(pos, cap);
        }
        lgo_trace::counter("detect/ocsvm/oe_fits", 1);
        lgo_trace::counter("detect/ocsvm/fit_points", pos.len() as u64);
        lgo_trace::counter("detect/ocsvm/outlier_points", neg.len() as u64);
        let width = pos[0].len();
        if !pos.iter().chain(&neg).all(|p| p.len() == width) {
            return Err(DetectError::InconsistentShapes);
        }
        // Standardize with benign statistics only: the outlier class must
        // not shift the feature frame the benign margin lives in.
        let mut scaler = StandardScaler::new();
        scaler.try_fit(&pos)?;
        let pos = scaler.transform(&pos)?;
        let neg = scaler.transform(&neg)?;
        let kernel = match config.kernel {
            KernelSpec::Fixed(k) => k,
            KernelSpec::SigmoidAuto { coef0 } => Kernel::Sigmoid {
                gamma: 1.0 / width as f64,
                coef0,
            },
            KernelSpec::RbfAuto => Kernel::Rbf {
                gamma: 1.0 / width as f64,
            },
        };

        let n_pos = pos.len();
        let n_neg = neg.len();
        let l = n_pos + n_neg;
        let upper = 1.0 / (config.nu * n_pos as f64);
        let c_neg = slack / n_neg as f64;
        // Per-index box `[lo, hi]`: positives push the margin out, the
        // negative class pulls it in with bounded mass.
        let lo = |t: usize| if t < n_pos { 0.0 } else { -c_neg };
        let hi = |t: usize| if t < n_pos { upper } else { 0.0 };

        let pts_pos = Matrix::from_rows(&pos.iter().map(Vec::as_slice).collect::<Vec<_>>());
        // Benign Gram block: shared-cache path exactly as in try_fit, so a
        // ROAST refit with the same benign roster is a cache hit.
        let q_pp: Arc<Matrix> = if crate::perf::optimized() {
            crate::kernel_cache::lock_global().gram(kernel, &pts_pos)
        } else {
            let rows = lgo_runtime::par_map_indexed(n_pos, |i| {
                (i..n_pos)
                    .map(|j| kernel.eval(pts_pos.row(i), pts_pos.row(j)))
                    .collect::<Vec<f64>>()
            });
            let mut q = Matrix::zeros(n_pos, n_pos);
            for (i, row) in rows.into_iter().enumerate() {
                for (off, v) in row.into_iter().enumerate() {
                    let j = i + off;
                    let s = q.as_mut_slice();
                    s[i * n_pos + j] = v;
                    s[j * n_pos + i] = v;
                }
            }
            Arc::new(q)
        };
        // Full Gram with the (small) bordered outlier blocks computed
        // directly; every entry is a pure function of its pair, so the
        // assembled matrix is identical whether q_pp came from the cache
        // or the fan-out.
        let mut q = Matrix::zeros(l, l);
        {
            let s = q.as_mut_slice();
            for i in 0..n_pos {
                s[i * l..i * l + n_pos].copy_from_slice(q_pp.row(i));
            }
            for i in 0..n_pos {
                for j in 0..n_neg {
                    let v = kernel.eval(pts_pos.row(i), &neg[j]);
                    s[i * l + n_pos + j] = v;
                    s[(n_pos + j) * l + i] = v;
                }
            }
            for i in 0..n_neg {
                for j in i..n_neg {
                    let v = kernel.eval(&neg[i], &neg[j]);
                    s[(n_pos + i) * l + n_pos + j] = v;
                    s[(n_pos + j) * l + n_pos + i] = v;
                }
            }
        }

        // libsvm-style init on the positive block (Σu = 1); negatives
        // start inactive at their upper bound 0.
        let mut u = vec![0.0; l];
        let n_full = (config.nu * n_pos as f64).floor() as usize;
        for a in u.iter_mut().take(n_full.min(n_pos)) {
            *a = upper;
        }
        if n_full < n_pos {
            u[n_full] = config.nu * n_pos as f64 - n_full as f64;
            u[n_full] *= upper;
        }

        let mut g: Vec<f64> = (0..l)
            .map(|i| q.row(i).iter().zip(&u).map(|(&qv, &a)| qv * a).sum())
            .collect();

        let max_iter = config.max_iter.unwrap_or(100 * l.max(100));
        let mut iterations = 0;
        while iterations < max_iter {
            // First-order working-set selection over the signed boxes:
            // i can still grow (u_i < hi_i), j can still shrink (u_j > lo_j).
            let mut i_sel: Option<usize> = None;
            let mut j_sel: Option<usize> = None;
            for t in 0..l {
                if u[t] < hi(t) - 1e-12 && i_sel.is_none_or(|i| g[t] < g[i]) {
                    i_sel = Some(t);
                }
                if u[t] > lo(t) + 1e-12 && j_sel.is_none_or(|j| g[t] > g[j]) {
                    j_sel = Some(t);
                }
            }
            let (Some(i), Some(j)) = (i_sel, j_sel) else {
                break;
            };
            if g[j] - g[i] < config.tol || i == j {
                break; // KKT satisfied within tolerance
            }
            let (qi, qj) = (q.row(i), q.row(j));
            let quad = (qi[i] + qj[j] - 2.0 * qi[j]).max(1e-12);
            let mut delta = (g[j] - g[i]) / quad;
            delta = delta.min(hi(i) - u[i]).min(u[j] - lo(j));
            if delta <= 0.0 {
                break;
            }
            u[i] += delta;
            u[j] -= delta;
            for (gt, (&qit, &qjt)) in g.iter_mut().zip(qi.iter().zip(qj)) {
                *gt += delta * (qit - qjt);
            }
            iterations += 1;
        }
        lgo_trace::record("detect/ocsvm/smo_iterations", iterations as u64);

        // ρ from strictly-interior vectors, or the boundary-gradient
        // midpoint — the same KKT conditions as the plain fit, with the
        // per-index boxes standing in for [0, C].
        let free: Vec<usize> = (0..l)
            .filter(|&t| u[t] > lo(t) + 1e-12 && u[t] < hi(t) - 1e-12)
            .collect();
        let rho = if !free.is_empty() {
            free.iter().map(|&t| g[t]).sum::<f64>() / free.len() as f64
        } else {
            let ub = (0..l)
                .filter(|&t| u[t] <= lo(t) + 1e-12)
                .map(|t| g[t])
                .fold(f64::INFINITY, f64::min);
            let lb = (0..l)
                .filter(|&t| u[t] >= hi(t) - 1e-12)
                .map(|t| g[t])
                .fold(f64::NEG_INFINITY, f64::max);
            match (ub.is_finite(), lb.is_finite()) {
                (true, true) => (ub + lb) / 2.0,
                (true, false) => ub,
                (false, true) => lb,
                _ => 0.0,
            }
        };

        // Keep support vectors of either sign; signed coefficients flow
        // through decide()/score_batch unchanged.
        let mut sv_rows: Vec<&[f64]> = Vec::new();
        let mut alphas = Vec::new();
        for t in 0..l {
            if u[t].abs() > 1e-12 {
                sv_rows.push(if t < n_pos {
                    pts_pos.row(t)
                } else {
                    neg[t - n_pos].as_slice()
                });
                alphas.push(u[t]);
            }
        }
        let support = Matrix::from_rows(&sv_rows);
        let mut svm = Self {
            support,
            alphas,
            rho,
            kernel,
            iterations,
            scaler,
            threshold: 0.0,
        };
        if let Some(q) = config.calibration_quantile {
            assert!(
                (0.0..1.0).contains(&q),
                "OneClassSvm: calibration_quantile = {q} outside [0, 1)"
            );
            let decisions: Vec<f64> = windows
                .iter()
                .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
                .map(|w| svm.try_decision_function(w))
                .collect::<Result<_, _>>()?;
            svm.threshold = lgo_series::stats::quantile(&decisions, q)
                // lint: allow(L1): at least one finite window exists (NoFiniteWindows otherwise), so decisions is nonempty
                .expect("nonempty training set");
        }
        Ok(svm)
    }

    /// Decision function `f(x) = Σ αᵢ K(xᵢ, x) − ρ` on the standardized
    /// input; lower values are more anomalous.
    ///
    /// # Panics
    ///
    /// Panics if the flattened window width differs from the training
    /// windows'. Use [`try_decision_function`](Self::try_decision_function)
    /// to handle malformed windows gracefully.
    pub fn decision_function(&self, window: &Window) -> f64 {
        match self.try_decision_function(window) {
            Ok(f) => f,
            // lint: allow(L1): documented panicking wrapper; try_decision_function is the checked path
            Err(e) => panic!("decision_function: {e}"),
        }
    }

    /// Fallible [`decision_function`](Self::decision_function).
    ///
    /// # Errors
    ///
    /// Returns [`DetectError::Scaler`] when the flattened window width
    /// differs from the training windows'.
    pub fn try_decision_function(&self, window: &Window) -> Result<f64, DetectError> {
        let x = self
            .scaler
            .transform(&[flatten(window)])?
            .pop()
            // lint: allow(L1): StandardScaler::transform returns exactly one row per input row
            .expect("one row in, one row out");
        Ok(self.decide(&x))
    }

    /// The decision sum over a standardized feature row — shared by every
    /// scoring path so they cannot drift apart.
    fn decide(&self, x: &[f64]) -> f64 {
        let s: f64 = self
            .support
            .iter_rows()
            .zip(&self.alphas)
            .map(|(sv, &a)| a * self.kernel.eval(sv, x))
            .sum();
        s - self.rho
    }

    /// [`decision_function`](Self::decision_function) against caller-owned
    /// buffers: zero allocations once the scratch is warm, identical bits.
    ///
    /// # Panics
    ///
    /// Panics if the flattened window width differs from the training
    /// windows' (the same contract as
    /// [`decision_function`](Self::decision_function)).
    pub fn decision_function_into(&self, window: &Window, scratch: &mut ScoreScratch) -> f64 {
        scratch.flat.clear();
        for row in window {
            scratch.flat.extend_from_slice(row);
        }
        if let Err(e) = self.scaler.transform_row_into(&scratch.flat, &mut scratch.row) {
            // lint: allow(L1): mirrors decision_function's documented panicking contract
            panic!("decision_function: {e}");
        }
        self.decide(&scratch.row)
    }

    /// The scalar kernel transform applied to a precomputed dot product —
    /// the per-entry step of the batched scoring path. Only meaningful for
    /// the dot-product kernel families.
    fn transform_dot(&self, d: f64) -> f64 {
        match self.kernel {
            Kernel::Linear => d,
            Kernel::Sigmoid { gamma, coef0 } => (gamma * d + coef0).tanh(),
            Kernel::Polynomial {
                gamma,
                coef0,
                degree,
            } => (gamma * d + coef0).powi(degree as i32),
            // lint: allow(L1): score_batch routes RBF to the per-window path before this
            Kernel::Rbf { .. } => unreachable!("rbf is not a dot-product kernel"),
        }
    }

    /// The calibrated anomaly cutoff on the decision function (0 when the
    /// classical sign rule is in use).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of support vectors retained.
    pub fn support_vector_count(&self) -> usize {
        self.support.rows()
    }

    /// SMO iterations spent during training.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// The resolved kernel (γ filled in for `auto` specs).
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }
}

impl AnomalyDetector for OneClassSvm {
    fn name(&self) -> &str {
        "ocsvm"
    }

    /// Score = calibrated threshold − decision function, so anomalies are
    /// positive.
    fn score(&self, window: &Window) -> f64 {
        lgo_trace::counter("detect/ocsvm/scores", 1);
        self.threshold - self.decision_function(window)
    }

    fn score_into(&self, window: &Window, scratch: &mut ScoreScratch) -> f64 {
        lgo_trace::counter("detect/ocsvm/scores", 1);
        self.threshold - self.decision_function_into(window, scratch)
    }

    /// Batched scoring. Dot-product kernels compute every
    /// (window × support-vector) dot in one tiled `X · SVᵀ` product, then
    /// apply the scalar kernel transform and α-sum per window in support
    /// order — the identical operations, in the identical order, as
    /// scoring each window alone (products commute bit-exactly), so the
    /// results are bit-identical; RBF (not a dot-product form) and the
    /// legacy-path toggle fall back to the per-window loop.
    fn score_batch(&self, windows: &[Window]) -> Vec<f64> {
        if windows.is_empty() {
            return Vec::new();
        }
        lgo_trace::counter("detect/ocsvm/scores", windows.len() as u64);
        let mut scratch = ScoreScratch::new();
        let batchable = crate::perf::optimized() && !matches!(self.kernel, Kernel::Rbf { .. });
        if !batchable {
            return windows
                .iter()
                .map(|w| self.threshold - self.decision_function_into(w, &mut scratch))
                .collect();
        }
        let mut xrows: Vec<Vec<f64>> = Vec::with_capacity(windows.len());
        for w in windows {
            scratch.flat.clear();
            for row in w {
                scratch.flat.extend_from_slice(row);
            }
            let mut x = Vec::new();
            if let Err(e) = self.scaler.transform_row_into(&scratch.flat, &mut x) {
                // lint: allow(L1): mirrors decision_function's documented panicking contract
                panic!("decision_function: {e}");
            }
            xrows.push(x);
        }
        if xrows.iter().flatten().any(|v| !v.is_finite()) {
            // A corrupted window would trip matmul_nt's strict-numerics
            // guard; the per-window path propagates its NaN exactly like
            // single-window scoring.
            return windows
                .iter()
                .map(|w| self.threshold - self.decision_function_into(w, &mut scratch))
                .collect();
        }
        let x = Matrix::from_rows(&xrows.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let dots = x.matmul_nt(&self.support);
        (0..dots.rows())
            .map(|i| {
                let s: f64 = dots
                    .row(i)
                    .iter()
                    .zip(&self.alphas)
                    .map(|(&d, &a)| a * self.transform_dot(d))
                    .sum();
                self.threshold - (s - self.rho)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> Vec<Window> {
        (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![vec![a.cos(), a.sin()]]
            })
            .collect()
    }

    fn rbf_cfg(nu: f64) -> OcSvmConfig {
        OcSvmConfig {
            nu,
            kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 1.0 }),
            ..OcSvmConfig::default()
        }
    }

    #[test]
    fn kernel_evaluations() {
        let u = [1.0, 0.0];
        let v = [0.0, 1.0];
        assert_eq!(Kernel::Linear.eval(&u, &v), 0.0);
        assert!((Kernel::Rbf { gamma: 0.5 }.eval(&u, &v) - (-1.0_f64).exp()).abs() < 1e-12);
        let sig = Kernel::Sigmoid {
            gamma: 1.0,
            coef0: 0.0,
        };
        assert_eq!(sig.eval(&u, &v), 0.0_f64.tanh());
        let poly = Kernel::Polynomial {
            gamma: 1.0,
            coef0: 1.0,
            degree: 2,
        };
        assert_eq!(poly.eval(&u, &u), 4.0);
    }

    #[test]
    fn detects_far_outliers_with_rbf() {
        let svm = OneClassSvm::fit(&ring(60), &rbf_cfg(0.1));
        assert!(svm.is_anomalous(&vec![vec![10.0, 10.0]]));
        assert!(svm.decision_function(&vec![vec![1.0, 0.0]]) > svm.decision_function(&vec![vec![10.0, 10.0]]));
        assert!(svm.support_vector_count() > 0);
        assert_eq!(svm.name(), "ocsvm");
    }

    #[test]
    fn nu_bounds_training_outlier_fraction() {
        // With nu = 0.5, at most ~half the training points may be flagged
        // anomalous (property of the nu parameterization).
        let data = ring(40);
        let svm = OneClassSvm::fit(&data, &rbf_cfg(0.5));
        let flagged = data
            .iter()
            .filter(|w| svm.decision_function(w) < 0.0)
            .count();
        assert!(
            flagged as f64 <= 0.5 * data.len() as f64 + 2.0,
            "{flagged}/{} training points flagged",
            data.len()
        );
    }

    #[test]
    fn sigmoid_auto_resolves_gamma() {
        let svm = OneClassSvm::fit(&ring(20), &OcSvmConfig::default());
        match svm.kernel() {
            Kernel::Sigmoid { gamma, coef0 } => {
                assert!((gamma - 0.5).abs() < 1e-12); // 2 features
                assert_eq!(coef0, 10.0);
            }
            other => panic!("unexpected kernel {other:?}"),
        }
    }

    #[test]
    fn max_samples_caps_training_set() {
        let cfg = OcSvmConfig {
            max_samples: Some(10),
            ..rbf_cfg(0.5)
        };
        let svm = OneClassSvm::fit(&ring(200), &cfg);
        assert!(svm.support_vector_count() <= 10);
    }

    #[test]
    fn training_terminates_within_iteration_cap() {
        let cfg = OcSvmConfig {
            max_iter: Some(50),
            ..rbf_cfg(0.3)
        };
        let svm = OneClassSvm::fit(&ring(50), &cfg);
        assert!(svm.iterations() <= 50);
    }

    #[test]
    fn deterministic_training() {
        let a = OneClassSvm::fit(&ring(30), &rbf_cfg(0.2));
        let b = OneClassSvm::fit(&ring(30), &rbf_cfg(0.2));
        let w = vec![vec![0.3, -0.4]];
        assert_eq!(a.decision_function(&w), b.decision_function(&w));
    }

    #[test]
    fn scratch_and_batch_scoring_match_score_bitwise() {
        // Both kernel families: sigmoid exercises the batched dot-product
        // path, RBF the per-window fallback.
        for cfg in [rbf_cfg(0.2), OcSvmConfig::default()] {
            let svm = OneClassSvm::fit(&ring(50), &cfg);
            let queries: Vec<Window> = (0..20)
                .map(|i| vec![vec![i as f64 * 0.17 - 1.5, (i as f64 * 0.29).cos()]])
                .collect();
            let mut scratch = ScoreScratch::new();
            let batch = svm.score_batch(&queries);
            assert_eq!(batch.len(), queries.len());
            for (w, &b) in queries.iter().zip(&batch) {
                let direct = svm.score(w);
                assert_eq!(
                    svm.score_into(w, &mut scratch).to_bits(),
                    direct.to_bits(),
                    "score_into diverged ({:?})",
                    svm.kernel()
                );
                assert_eq!(b.to_bits(), direct.to_bits(), "score_batch diverged ({:?})", svm.kernel());
            }
        }
    }

    #[test]
    fn legacy_and_optimized_fits_agree_bitwise() {
        let _g = crate::perf::test_guard()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let data = ring(40);
        for cfg in [rbf_cfg(0.3), OcSvmConfig::default()] {
            let was = crate::perf::set_optimized(false);
            let legacy = OneClassSvm::fit(&data, &cfg);
            crate::perf::set_optimized(true);
            let optimized = OneClassSvm::fit(&data, &cfg);
            crate::perf::set_optimized(was);
            assert_eq!(legacy.support_vector_count(), optimized.support_vector_count());
            assert_eq!(legacy.iterations(), optimized.iterations());
            assert_eq!(legacy.threshold().to_bits(), optimized.threshold().to_bits());
            for w in &data {
                assert_eq!(
                    legacy.decision_function(w).to_bits(),
                    optimized.decision_function(w).to_bits(),
                    "legacy/optimized fit diverged ({:?})",
                    optimized.kernel()
                );
            }
        }
    }

    #[test]
    fn repeated_fits_hit_the_global_kernel_cache() {
        let _g = crate::perf::test_guard()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A roster shape no other test uses, so its key is ours alone.
        let data = ring(23);
        let cfg = rbf_cfg(0.45);
        let before = crate::kernel_cache::lock_global().stats();
        let a = OneClassSvm::fit(&data, &cfg);
        let mid = crate::kernel_cache::lock_global().stats();
        let b = OneClassSvm::fit(&data, &cfg);
        let after = crate::kernel_cache::lock_global().stats();
        assert!(mid.misses > before.misses, "first fit must miss");
        assert!(after.hits > mid.hits, "identical refit must hit");
        let w = vec![vec![0.2, 0.8]];
        assert_eq!(a.decision_function(&w).to_bits(), b.decision_function(&w).to_bits());
    }

    #[test]
    fn outlier_exposure_with_no_outliers_is_bitwise_plain_fit() {
        let data = ring(40);
        for cfg in [rbf_cfg(0.3), OcSvmConfig::default()] {
            let plain = OneClassSvm::try_fit(&data, &cfg).unwrap();
            let oe = OneClassSvm::try_fit_with_outliers(&data, &[], 0.5, &cfg).unwrap();
            let zero_slack =
                OneClassSvm::try_fit_with_outliers(&data, &ring(4), 0.0, &cfg).unwrap();
            for svm in [&oe, &zero_slack] {
                assert_eq!(plain.support_vector_count(), svm.support_vector_count());
                assert_eq!(plain.threshold().to_bits(), svm.threshold().to_bits());
                for w in &data {
                    assert_eq!(
                        plain.decision_function(w).to_bits(),
                        svm.decision_function(w).to_bits(),
                        "empty-outlier reduction diverged ({:?})",
                        svm.kernel()
                    );
                }
            }
        }
    }

    #[test]
    fn outlier_exposure_shapes_the_margin_against_outliers() {
        // A filled blob (spiral of shrinking radius): interior points carry
        // strictly positive decision values, unlike the pure ring where
        // every training point sits at the margin.
        let data: Vec<Window> = (0..60)
            .map(|i| {
                let a = i as f64 / 60.0 * std::f64::consts::TAU;
                let r = 0.15 + 0.85 * ((i * 7919) % 60) as f64 / 60.0;
                vec![vec![r * a.cos(), r * a.sin()]]
            })
            .collect();
        let cfg = rbf_cfg(0.2);
        let plain = OneClassSvm::try_fit(&data, &cfg).unwrap();
        // Expose an adversarial cluster exactly where the plain fit is most
        // confident — the worst case for the defender, and a guaranteed
        // KKT violation for the negative class (decision > 0 there).
        let anchor = data
            .iter()
            .max_by(|a, b| {
                plain
                    .decision_function(a)
                    .total_cmp(&plain.decision_function(b))
            })
            .unwrap()
            .clone();
        assert!(plain.decision_function(&anchor) > 1e-3);
        let outliers: Vec<Window> = vec![anchor; 6];
        let oe = OneClassSvm::try_fit_with_outliers(&data, &outliers, 0.5, &cfg).unwrap();
        // The negative class carries signed support coefficients.
        assert!(
            oe.alphas.iter().any(|&a| a < 0.0),
            "no negative support coefficients retained"
        );
        // The decision value at the exposed outliers drops relative to the
        // plain fit: the margin is pushed away from them.
        let mean_at = |svm: &OneClassSvm| {
            outliers.iter().map(|w| svm.decision_function(w)).sum::<f64>()
                / outliers.len() as f64
        };
        assert!(
            mean_at(&oe) < mean_at(&plain),
            "exposure did not lower the decision value at the outliers: \
             oe {} vs plain {}",
            mean_at(&oe),
            mean_at(&plain)
        );
        // Anomaly scores (threshold − decision) at the outliers rise.
        let mean_score = |svm: &OneClassSvm| {
            outliers.iter().map(|w| svm.score(w)).sum::<f64>() / outliers.len() as f64
        };
        assert!(mean_score(&oe) > mean_score(&plain));
    }

    #[test]
    fn outlier_refit_reuses_cached_benign_gram_block() {
        let _g = crate::perf::test_guard()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A roster shape unique to this test so the cache key is ours.
        let data = ring(29);
        let cfg = rbf_cfg(0.35);
        let round1: Vec<Window> = vec![vec![vec![1.2, 0.1]]];
        let mut round2 = round1.clone();
        round2.push(vec![vec![1.3, -0.1]]);
        let before = crate::kernel_cache::lock_global().stats();
        let _a = OneClassSvm::try_fit_with_outliers(&data, &round1, 0.4, &cfg).unwrap();
        let mid = crate::kernel_cache::lock_global().stats();
        // ROAST round 2: grown outlier set, unchanged benign roster — the
        // big benign×benign Gram block must be a cache hit.
        let _b = OneClassSvm::try_fit_with_outliers(&data, &round2, 0.4, &cfg).unwrap();
        let after = crate::kernel_cache::lock_global().stats();
        assert!(mid.misses > before.misses, "first fit must miss");
        assert!(after.hits > mid.hits, "refit must hit the benign block");
    }

    #[test]
    #[should_panic(expected = "nu = 1.5")]
    fn invalid_nu_rejected() {
        let _ = OneClassSvm::fit(&ring(5), &rbf_cfg(1.5));
    }

    #[test]
    #[should_panic(expected = "no training windows")]
    fn empty_training_rejected() {
        let _ = OneClassSvm::fit(&[], &OcSvmConfig::default());
    }
}
