//! # lgo-detect
//!
//! The three anomaly detectors the paper defends with selective training:
//!
//! - [`KnnDetector`] — a k-nearest-neighbour classifier with the paper's
//!   Appendix-B parameters (k = 7, uniform weights, Minkowski p = 2),
//! - [`OneClassSvm`] — a ν-one-class SVM trained by SMO with the paper's
//!   sigmoid kernel (γ = auto, coef0 = 10, ν = 0.5, tol = 1e-3),
//! - [`MadGan`] — multivariate anomaly detection GAN (Li et al., 2019) with
//!   LSTM generator/discriminator and the DR-Score (discrimination +
//!   reconstruction) anomaly score, at the paper's window parameters
//!   (4 signals, seq_len 12, step 1).
//!
//! All detectors consume fixed-length multivariate windows and expose the
//! common [`AnomalyDetector`] trait: a real-valued anomaly score (higher =
//! more anomalous) plus a boolean decision.
//!
//! # Examples
//!
//! ```
//! use lgo_detect::{AnomalyDetector, KnnDetector, KnnConfig};
//!
//! // Benign windows cluster near 0; the malicious one sits far away.
//! let benign: Vec<Vec<Vec<f64>>> = (0..20)
//!     .map(|i| vec![vec![i as f64 * 0.01]; 4])
//!     .collect();
//! let malicious: Vec<Vec<Vec<f64>>> = (0..20)
//!     .map(|i| vec![vec![5.0 + i as f64 * 0.01]; 4])
//!     .collect();
//! let knn = KnnDetector::fit(&benign, &malicious, &KnnConfig::default());
//! assert!(knn.is_anomalous(&vec![vec![5.1]; 4]));
//! assert!(!knn.is_anomalous(&vec![vec![0.05]; 4]));
//! ```

mod detector;
mod error;
mod kdtree;
mod kernel_cache;
mod knn;
mod madgan;
mod ocsvm;
pub mod perf;
mod subsample;
pub mod summary;

pub use detector::AnomalyDetector;
pub use error::DetectError;
pub use kdtree::KdTree;
pub use kernel_cache::{global as kernel_cache_global, KernelCache, KernelCacheStats};
pub use knn::{KnnAlgorithm, KnnConfig, KnnDetector};
pub use madgan::{MadGan, MadGanConfig};
pub use detector::{flag_all, ScoreScratch, Window};
pub use ocsvm::{Kernel, KernelSpec, OcSvmConfig, OneClassSvm};
pub use subsample::{subsample_cap, subsample_indices};
pub use summary::{
    cgm_summary, cgm_summary_mode, cgm_summary_mode_into, summarize_all, summarize_all_mode,
    CgmSummaryDetector, SummaryMode,
};
