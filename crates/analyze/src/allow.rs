//! Allowlist directives.
//!
//! A violation can be suppressed by a trailing comment on the same line:
//!
//! ```text
//! let v = xs.last().expect("pushed above"); // lint: allow(L1): len checked two lines up
//! ```
//!
//! or, when the line is too long for a trailing comment, by a standalone
//! directive on the line directly above the violation:
//!
//! ```text
//! // lint: allow(L1): documented precondition; see # Panics
//! .unwrap_or_else(|| panic!("select: unknown channel {name:?}"));
//! ```
//!
//! The justification after the second colon is mandatory (rule `A0`) and a
//! directive that suppresses nothing is itself a violation (rule `A1`), so
//! the allowlist cannot rot silently. One directive may cover several rules:
//! `// lint: allow(L1, L3): ...`.

use crate::lexer::{Token, TokenKind};

/// Rules a directive may name.
pub const KNOWN_RULES: &[&str] = &[
    "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9", "L10", "L11", "L12", "L13",
];

/// One parsed `// lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct AllowDirective {
    /// Line the directive (and therefore the code it excuses) sits on.
    pub line: usize,
    /// Rule IDs the directive covers, e.g. `["L1"]`.
    pub rules: Vec<String>,
    /// Free-text justification; empty string if the author omitted it.
    pub justification: String,
    /// Set when the directive actually suppressed a finding.
    pub used: bool,
    /// Set when the directive text could not be parsed.
    pub malformed: bool,
    /// True when the directive is the only thing on its line; it then
    /// applies to the next line instead.
    pub standalone: bool,
}

impl AllowDirective {
    /// Whether this directive excuses rule `rule` on line `line`.
    pub fn covers(&self, rule: &str, line: usize) -> bool {
        if self.malformed || !self.rules.iter().any(|r| r == rule) {
            return false;
        }
        if self.standalone {
            line == self.line + 1
        } else {
            line == self.line
        }
    }
}

/// Extracts directives from the comment tokens of a file.
pub fn parse_allows(tokens: &[Token]) -> Vec<AllowDirective> {
    let mut out = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::LineComment {
            continue;
        }
        let standalone = !tokens
            .iter()
            .any(|o| !o.is_comment() && o.line == t.line);
        let body = t.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim();
        let Some(rest) = rest.strip_prefix("allow") else {
            out.push(malformed(t.line, standalone));
            continue;
        };
        let rest = rest.trim_start();
        let (Some(open), Some(close)) = (rest.find('('), rest.find(')')) else {
            out.push(malformed(t.line, standalone));
            continue;
        };
        if open != 0 || close < open {
            out.push(malformed(t.line, standalone));
            continue;
        }
        let rules: Vec<String> = rest[open + 1..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let bad_rule = rules.is_empty() || rules.iter().any(|r| !KNOWN_RULES.contains(&r.as_str()));
        if bad_rule {
            out.push(malformed(t.line, standalone));
            continue;
        }
        let tail = rest[close + 1..].trim();
        let justification = tail.strip_prefix(':').map(str::trim).unwrap_or("").to_string();
        out.push(AllowDirective {
            line: t.line,
            rules,
            justification,
            used: false,
            malformed: false,
            standalone,
        });
    }
    out
}

fn malformed(line: usize, standalone: bool) -> AllowDirective {
    AllowDirective {
        line,
        rules: Vec::new(),
        justification: String::new(),
        used: false,
        malformed: true,
        standalone,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    #[test]
    fn parses_single_rule_with_justification() {
        let toks = tokenize("let x = 1; // lint: allow(L1): invariant held by caller\n");
        let allows = parse_allows(&toks);
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].rules, vec!["L1"]);
        assert_eq!(allows[0].justification, "invariant held by caller");
        assert!(!allows[0].malformed);
    }

    #[test]
    fn parses_multi_rule() {
        let toks = tokenize("// lint: allow(L1, L3): panicking wrapper, try_ twin exists\n");
        let allows = parse_allows(&toks);
        assert_eq!(allows[0].rules, vec!["L1", "L3"]);
    }

    #[test]
    fn missing_justification_is_empty() {
        let toks = tokenize("// lint: allow(L2)\n");
        let allows = parse_allows(&toks);
        assert!(allows[0].justification.is_empty());
        assert!(!allows[0].malformed);
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let toks = tokenize("// lint: allow(L99): nope\n");
        assert!(parse_allows(&toks)[0].malformed);
    }

    #[test]
    fn unrelated_comments_are_ignored() {
        let toks = tokenize("// just a comment mentioning allow(L1)\n/// doc lint: allow(L1): x\n");
        assert!(parse_allows(&toks).is_empty());
    }
}
