//! The lint rules.
//!
//! | ID | Enforced on | Violation |
//! |----|-------------|-----------|
//! | L1 | non-test library code of the seven defense crates | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | L2 | whole workspace (non-test) | `partial_cmp` on floats / raw `<` `>` inside comparator closures — use `f64::total_cmp` |
//! | L3 | error-layer crates | `pub fn` that can panic without a `try_` twin or `Result` return |
//! | L4 | whole workspace (non-test) | `==` / `!=` against a float literal |
//! | L5 | `lgo-core` | `pub` item without a doc comment |
//! | L6 | whole workspace (non-test) except `lgo-runtime` internals | bare `.unwrap()`/`.expect()` on `lock()`/`read()`/`write()`/`join()` results |
//! | L7 | non-test library code of every crate except `lgo-bench` / `lgo-analyze` | bare `println!` / `eprintln!` — report through lgo-trace or return data |
//! | L8 | non-test library code of every crate except `lgo-runtime` / `lgo-serve` | `std::thread::sleep` — sleep-based waits hide stalls and break determinism |
//!
//! Rules operate on the token stream from [`crate::lexer`]; test code
//! (`#[cfg(test)]` items, `#[test]` fns) is masked out first. Findings can
//! be suppressed with a trailing `// lint: allow(<rule>): <why>` comment —
//! see [`crate::allow`].

use crate::allow::parse_allows;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::report::Finding;

/// Which rules apply to a given file; derived from its workspace path by
/// [`FileScope::for_path`], or use [`FileScope::all`] to enforce everything
/// (explicit-file mode, fixtures).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    pub l1: bool,
    pub l2: bool,
    pub l3: bool,
    pub l4: bool,
    pub l5: bool,
    pub l6: bool,
    pub l7: bool,
    pub l8: bool,
}

/// The defense-stack library crates where a stray panic corrupts risk
/// profiles silently (L1/L3 scope).
pub const LIB_CRATES: &[&str] = &[
    "core", "detect", "forecast", "nn", "tensor", "series", "cluster",
];

impl FileScope {
    /// Every rule enabled.
    pub fn all() -> Self {
        FileScope {
            l1: true,
            l2: true,
            l3: true,
            l4: true,
            l5: true,
            l6: true,
            l7: true,
            l8: true,
        }
    }

    /// Scope for a workspace-relative path (`crates/core/src/risk.rs`).
    ///
    /// Returns `None` for files the analyzer should not scan at all
    /// (vendored dependencies, fixture trees).
    pub fn for_path(rel: &str) -> Option<Self> {
        let rel = rel.replace('\\', "/");
        if rel.starts_with("vendor/") || rel.contains("/fixtures/") || rel.starts_with("target/") {
            return None;
        }
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        // Library source excludes binaries, integration tests and benches.
        let in_lib_src = rel.contains("/src/") && !rel.contains("/src/bin/");
        let is_test_file = rel.contains("/tests/") || rel.contains("/benches/");
        let lib_crate = LIB_CRATES.contains(&krate);
        Some(FileScope {
            l1: lib_crate && in_lib_src && !is_test_file,
            l2: !is_test_file,
            l3: lib_crate && in_lib_src && !is_test_file,
            l4: !is_test_file,
            l5: krate == "core" && in_lib_src && !is_test_file,
            // The runtime's pool internals recover from poisoning by
            // design; everywhere else a poisoned-lock panic would bypass
            // the error layer.
            l6: krate != "runtime" && !is_test_file,
            // Library code reports through lgo-trace or returns data; stdout
            // belongs to the experiment binaries (and lgo-bench / lgo-analyze
            // are presentation layers by design).
            l7: in_lib_src && !is_test_file && !matches!(krate, "bench" | "analyze"),
            // Sleep-based waiting belongs to the scheduling layers: the
            // runtime's pool and the serving stack's watchdog/backoff own
            // their timing; everywhere else a sleep hides a missing
            // condition variable and perturbs determinism.
            l8: in_lib_src && !is_test_file && !matches!(krate, "runtime" | "serve"),
        })
    }
}

/// Runs every in-scope rule over one file's source text.
pub fn analyze_source(file: &str, src: &str, scope: FileScope) -> Vec<Finding> {
    let tokens = tokenize(src);
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let ctx = Ctx { tokens: &tokens, sig: &sig };
    let test_mask = ctx.test_mask();
    let mut allows = parse_allows(&tokens);

    let mut raw: Vec<Finding> = Vec::new();
    site_rules(file, &ctx, &test_mask, scope, &mut raw);
    if scope.l3 {
        rule_l3(file, &ctx, &test_mask, &allows, &mut raw);
    }
    if scope.l5 {
        rule_l5(file, &ctx, &test_mask, &mut raw);
    }

    // Apply the allowlist: a finding survives unless a directive on its
    // line names its rule.
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw {
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.covers(f.rule, f.line) {
                a.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    // Allowlist hygiene.
    for a in &allows {
        if a.malformed {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "A0",
                message: "malformed lint directive; expected `// lint: allow(L<n>): <why>`"
                    .to_string(),
            });
        } else if a.justification.is_empty() {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "A0",
                message: format!(
                    "allow({}) directive is missing its mandatory justification",
                    a.rules.join(", ")
                ),
            });
        } else if !a.used {
            findings.push(Finding {
                file: file.to_string(),
                line: a.line,
                rule: "A1",
                message: format!(
                    "allow({}) directive suppresses nothing; remove it",
                    a.rules.join(", ")
                ),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Token-stream cursor shared by the rules: `sig[i]` indexes into `tokens`,
/// skipping comments.
struct Ctx<'a> {
    tokens: &'a [Token],
    sig: &'a [usize],
}

impl<'a> Ctx<'a> {
    fn n(&self) -> usize {
        self.sig.len()
    }

    fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    fn text(&self, i: usize) -> &str {
        &self.tok(i).text
    }

    fn text_at(&self, i: isize) -> &str {
        if i < 0 || i as usize >= self.n() {
            ""
        } else {
            self.text(i as usize)
        }
    }

    /// Marks tokens inside test-only items: `#[cfg(test)] mod`, `#[test]`
    /// and `#[should_panic]` fns.
    fn test_mask(&self) -> Vec<bool> {
        let n = self.n();
        let mut mask = vec![false; n];
        let mut i = 0;
        while i < n {
            if self.text(i) == "#" && i + 1 < n && self.text(i + 1) == "[" {
                let (attr_end, is_test) = self.scan_attr(i + 1);
                if is_test {
                    // Skip any further attributes before the item itself.
                    let mut j = attr_end + 1;
                    while j + 1 < n && self.text(j) == "#" && self.text(j + 1) == "[" {
                        let (e, _) = self.scan_attr(j + 1);
                        j = e + 1;
                    }
                    let end = self.item_end(j);
                    for m in mask.iter_mut().take(end.min(n - 1) + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
                i = attr_end + 1;
                continue;
            }
            i += 1;
        }
        mask
    }

    /// From the `[` of an attribute, returns (index of matching `]`,
    /// whether the attribute marks test-only code).
    fn scan_attr(&self, open: usize) -> (usize, bool) {
        let n = self.n();
        let mut depth = 0usize;
        let mut end = n - 1;
        for i in open..n {
            match self.text(i) {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        end = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner: Vec<&str> = (open + 1..end).map(|i| self.text(i)).collect();
        let is_test = match inner.first() {
            Some(&"test") | Some(&"should_panic") => true,
            Some(&"cfg") => !inner.contains(&"not") && inner.contains(&"test"),
            _ => false,
        };
        (end, is_test)
    }

    /// From the first token of an item, returns the index of its final
    /// token (`;` at top nesting or the matching `}` of its body).
    fn item_end(&self, start: usize) -> usize {
        let n = self.n();
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut i = start;
        while i < n {
            match self.text(i) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => return i,
                "{" if paren == 0 && bracket == 0 => {
                    return self.match_brace(i);
                }
                _ => {}
            }
            i += 1;
        }
        n.saturating_sub(1)
    }

    /// Index of the `}` matching the `{` at `open`.
    fn match_brace(&self, open: usize) -> usize {
        let n = self.n();
        let mut depth = 0isize;
        for i in open..n {
            match self.text(i) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        n - 1
    }

    /// Index of the `)` matching the `(` at `open`.
    fn match_paren(&self, open: usize) -> usize {
        let n = self.n();
        let mut depth = 0isize;
        for i in open..n {
            match self.text(i) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
        }
        n - 1
    }

    /// If sig index `i` is a panic-family site, returns a display name:
    /// `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / ...
    fn panic_site(&self, i: usize) -> Option<&'static str> {
        let t = self.tok(i);
        if t.kind != TokenKind::Ident {
            return None;
        }
        let prev = self.text_at(i as isize - 1);
        let next = self.text_at(i as isize + 1);
        match t.text.as_str() {
            "unwrap" if prev == "." && next == "(" => Some(".unwrap()"),
            "expect" if prev == "." && next == "(" => Some(".expect()"),
            "panic" if next == "!" && prev != "::" => Some("panic!"),
            "unreachable" if next == "!" && prev != "::" => Some("unreachable!"),
            "todo" if next == "!" && prev != "::" => Some("todo!"),
            "unimplemented" if next == "!" && prev != "::" => Some("unimplemented!"),
            _ => None,
        }
    }
}

/// Comparator-style adapters whose closure must not use raw `<` / `>`.
const COMPARATOR_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Single pass emitting the site-local rules L1, L2, L4, L6, L7 and L8.
fn site_rules(file: &str, ctx: &Ctx, test_mask: &[bool], scope: FileScope, out: &mut Vec<Finding>) {
    let n = ctx.n();
    for (i, &masked) in test_mask.iter().enumerate() {
        if masked {
            continue;
        }
        let t = ctx.tok(i);
        // L1: panic-family call sites.
        if scope.l1 {
            if let Some(name) = ctx.panic_site(i) {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L1",
                    message: format!(
                        "found `{name}` in library code; return a Result through the error \
                         layer (or justify with `// lint: allow(L1): <why>`)"
                    ),
                });
            }
        }
        // L2: NaN-unsound float ordering.
        if scope.l2 && t.kind == TokenKind::Ident {
            if t.text == "partial_cmp" {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L2",
                    message: "`partial_cmp` on floats is NaN-unsound; use `f64::total_cmp` \
                              (or `Ord::cmp` for non-float keys)"
                        .to_string(),
                });
            } else if COMPARATOR_FNS.contains(&t.text.as_str())
                && ctx.text_at(i as isize + 1) == "("
                && ctx.text_at(i as isize + 2) == "|"
            {
                let close = ctx.match_paren(i + 1);
                for j in i + 2..close {
                    let op = ctx.text(j);
                    if matches!(op, "<" | ">" | "<=" | ">=") && ctx.text_at(j as isize - 1) != "::"
                    {
                        out.push(Finding {
                            file: file.to_string(),
                            line: ctx.tok(j).line,
                            rule: "L2",
                            message: format!(
                                "raw `{op}` inside a `{}` comparator is NaN-unsound; \
                                 use `total_cmp`/`cmp`",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
        // L6: panicking on synchronization results. A poisoned Mutex or a
        // panicked worker thread surfaces as an Err, and a bare unwrap
        // turns one task's failure into a process abort; recover with
        // `PoisonError::into_inner` or route through the error layer.
        if scope.l6 {
            if let Some(name) = ctx.panic_site(i) {
                let method = ctx.text_at(i as isize - 4);
                if (name == ".unwrap()" || name == ".expect()")
                    && ctx.text_at(i as isize - 2) == ")"
                    && ctx.text_at(i as isize - 3) == "("
                    && matches!(method, "lock" | "read" | "write" | "join")
                    && ctx.text_at(i as isize - 5) == "."
                {
                    out.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "L6",
                        message: format!(
                            "bare `{name}` on a `.{method}()` result panics on lock \
                             poisoning / thread panic; recover (e.g. \
                             `PoisonError::into_inner`) or justify with \
                             `// lint: allow(L6): <why>`"
                        ),
                    });
                }
            }
        }
        // L7: stdout/stderr noise in library code. Defense-crate libraries
        // run inside parallel pipelines; prints interleave across workers
        // and bypass the structured trace layer. (`::println!` from a macro
        // path is not a bare call site and is left alone, like `::panic!`
        // in L1.)
        if scope.l7
            && t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && ctx.text_at(i as isize + 1) == "!"
            && ctx.text_at(i as isize - 1) != "::"
        {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: "L7",
                message: format!(
                    "bare `{}!` in library code; record through lgo-trace (or justify \
                     with `// lint: allow(L7): <why>`)",
                    t.text
                ),
            });
        }
        // L8: sleep-based waits in library code. A sleep is either a
        // disguised synchronization primitive (use a Condvar or the
        // runtime's watchdog machinery) or a tuning hack that stalls
        // differently on every machine; both hide real stalls from the
        // deadline/trace layers. Covers `thread::sleep(...)` (qualified)
        // and a bare imported `sleep(...)` call; `.sleep()` methods and
        // `fn sleep` definitions are not thread sleeps.
        if scope.l8 && t.kind == TokenKind::Ident && t.text == "sleep"
            && ctx.text_at(i as isize + 1) == "("
        {
            let prev = ctx.text_at(i as isize - 1);
            let qualified = prev == "::" && ctx.text_at(i as isize - 2) == "thread";
            let bare = !matches!(prev, "::" | "." | "fn");
            if qualified || bare {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L8",
                    message: "`thread::sleep` in library code hides stalls and breaks \
                              determinism; wait on a Condvar / deadline instead (or \
                              justify with `// lint: allow(L8): <why>`)"
                        .to_string(),
                });
            }
        }
        // L4: float literal equality.
        if scope.l4 && t.kind == TokenKind::Op && (t.text == "==" || t.text == "!=") {
            let float_neighbor = |j: isize| -> bool {
                if j < 0 || j as usize >= n {
                    return false;
                }
                matches!(ctx.tok(j as usize).kind, TokenKind::NumLit { is_float: true })
            };
            if float_neighbor(i as isize - 1) || float_neighbor(i as isize + 1) {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L4",
                    message: format!(
                        "`{}` against a float literal; compare with an epsilon or justify \
                         exact comparison with `// lint: allow(L4): <why>`",
                        t.text
                    ),
                });
            }
        }
    }
}

/// One public function parsed out of the token stream.
struct PubFn {
    name: String,
    line: usize,
    returns_result: bool,
    body: Option<(usize, usize)>,
}

/// L3: a `pub fn` that can panic must have a `try_` twin or return Result.
fn rule_l3(
    file: &str,
    ctx: &Ctx,
    test_mask: &[bool],
    allows: &[crate::allow::AllowDirective],
    out: &mut Vec<Finding>,
) {
    let n = ctx.n();
    // All function names in the file, for `try_` twin lookup.
    let mut fn_names: Vec<String> = Vec::new();
    for i in 0..n {
        if ctx.text(i) == "fn" && i + 1 < n && ctx.tok(i + 1).kind == TokenKind::Ident {
            fn_names.push(ctx.text(i + 1).to_string());
        }
    }
    for f in collect_pub_fns(ctx, test_mask) {
        if f.returns_result || f.name.starts_with("try_") {
            continue;
        }
        if fn_names.iter().any(|n| n == &format!("try_{}", f.name)) {
            continue;
        }
        let Some((body_open, body_close)) = f.body else {
            continue;
        };
        // "Can fail" = contains a panic-family site that is not individually
        // excused via an L1 allow (an excused site is a documented
        // invariant, not a failure mode).
        let mut can_fail = None;
        for (i, &masked) in test_mask
            .iter()
            .enumerate()
            .take(body_close + 1)
            .skip(body_open)
        {
            if masked {
                continue;
            }
            if let Some(site) = ctx.panic_site(i) {
                let line = ctx.tok(i).line;
                let excused = allows.iter().any(|a| a.covers("L1", line));
                if !excused {
                    can_fail = Some(site);
                    break;
                }
            }
        }
        if let Some(site) = can_fail {
            out.push(Finding {
                file: file.to_string(),
                line: f.line,
                rule: "L3",
                message: format!(
                    "pub fn `{}` can panic (contains `{site}`) but neither returns Result \
                     nor has a `try_{}` twin",
                    f.name, f.name
                ),
            });
        }
    }
}

/// Parses `pub fn` items: name, Result return, body span.
fn collect_pub_fns(ctx: &Ctx, test_mask: &[bool]) -> Vec<PubFn> {
    let n = ctx.n();
    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if test_mask[i] || ctx.text(i) != "pub" {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)` are not public API.
        if ctx.text_at(j as isize) == "(" {
            i = ctx.match_paren(j) + 1;
            continue;
        }
        // Skip fn qualifiers (`pub const fn`, `pub unsafe extern "C" fn`, ...).
        while j < n {
            let t = ctx.text(j);
            let qualifier = matches!(t, "async" | "unsafe" | "extern")
                || (t == "const" && ctx.text_at(j as isize + 1) == "fn")
                || ctx.tok(j).kind == TokenKind::StrLit;
            if !qualifier {
                break;
            }
            j += 1;
        }
        if j >= n || ctx.text(j) != "fn" {
            i += 1;
            continue;
        }
        let name_idx = j + 1;
        if name_idx >= n || ctx.tok(name_idx).kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = ctx.text(name_idx).to_string();
        let line = ctx.tok(name_idx).line;
        // Skip generics to the argument list.
        let mut k = name_idx + 1;
        if ctx.text_at(k as isize) == "<" {
            let mut depth = 0isize;
            while k < n {
                match ctx.text(k) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    ">>" => depth -= 2,
                    _ => {}
                }
                k += 1;
                if depth <= 0 {
                    break;
                }
            }
        }
        if k >= n || ctx.text(k) != "(" {
            i = name_idx + 1;
            continue;
        }
        let args_close = ctx.match_paren(k);
        // Return type: tokens after `->` up to the body / `;` / `where`.
        let mut returns_result = false;
        let mut m = args_close + 1;
        if ctx.text_at(m as isize) == "->" {
            m += 1;
            while m < n {
                let t = ctx.text(m);
                if t == "{" || t == ";" || t == "where" {
                    break;
                }
                if ctx.tok(m).kind == TokenKind::Ident && t.ends_with("Result") {
                    returns_result = true;
                }
                m += 1;
            }
        }
        // Body: first `{` before a `;` (trait methods without bodies end at `;`).
        let mut body = None;
        while m < n {
            match ctx.text(m) {
                "{" => {
                    body = Some((m, ctx.match_brace(m)));
                    break;
                }
                ";" => break,
                _ => m += 1,
            }
        }
        out.push(PubFn { name, line, returns_result, body });
        i = match body {
            Some((_, close)) => close + 1,
            None => m + 1,
        };
    }
    out
}

/// Item keywords L5 requires documentation on.
const DOC_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "mod", "static", "const", "union",
];

/// L5: every `pub` item in `lgo-core` carries a doc comment.
fn rule_l5(file: &str, ctx: &Ctx, test_mask: &[bool], out: &mut Vec<Finding>) {
    let n = ctx.n();
    for (i, &masked) in test_mask.iter().enumerate() {
        if masked || ctx.text(i) != "pub" {
            continue;
        }
        if ctx.text_at(i as isize + 1) == "(" {
            continue; // pub(crate) / pub(super)
        }
        // Find the item keyword, skipping qualifiers.
        let mut j = i + 1;
        while j < n
            && (matches!(ctx.text(j), "async" | "unsafe" | "extern")
                || ctx.tok(j).kind == TokenKind::StrLit)
        {
            j += 1;
        }
        let Some(kw) = (j < n).then(|| ctx.text(j)) else {
            continue;
        };
        // `pub const fn` -> fn; `pub const NAME` -> const.
        let kw = if kw == "const" && ctx.text_at(j as isize + 1) == "fn" { "fn" } else { kw };
        if !DOC_ITEMS.contains(&kw) {
            continue; // `pub use` re-exports, struct fields, enum variants...
        }
        let name = if j + 1 < n && ctx.tok(j + 1).kind == TokenKind::Ident {
            ctx.text(j + 1).to_string()
        } else {
            kw.to_string()
        };
        if !has_doc_before(ctx, i) {
            out.push(Finding {
                file: file.to_string(),
                line: ctx.tok(i).line,
                rule: "L5",
                message: format!("public item `{name}` lacks a doc comment (`///`)"),
            });
        }
    }
}

/// Walks backwards from the `pub` at sig index `i`, skipping attributes and
/// plain comments, looking for a doc comment.
fn has_doc_before(ctx: &Ctx, i: usize) -> bool {
    // Position in the full (comment-bearing) token stream.
    let mut f = ctx.sig[i];
    while f > 0 {
        f -= 1;
        let t = &ctx.tokens[f];
        match t.kind {
            // Inner docs (`//!`, `/*!`) document the enclosing module, not
            // the item that happens to follow them.
            TokenKind::DocComment => {
                if t.text.starts_with("//!") || t.text.starts_with("/*!") {
                    continue;
                }
                return true;
            }
            TokenKind::LineComment | TokenKind::BlockComment => continue,
            TokenKind::Op if t.text == "]" => {
                // Skip an attribute `#[ ... ]` (or inner `#![ ... ]`).
                let mut depth = 1isize;
                while f > 0 && depth > 0 {
                    f -= 1;
                    match ctx.tokens[f].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                if f > 0 && ctx.tokens[f - 1].text == "!" {
                    f -= 1;
                }
                if f > 0 && ctx.tokens[f - 1].text == "#" {
                    f -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}
