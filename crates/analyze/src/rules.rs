//! The lint rules and the two-pass analysis engine.
//!
//! | ID  | Enforced on | Violation |
//! |-----|-------------|-----------|
//! | L1  | non-test library code of the seven defense crates | `.unwrap()`, `.expect()`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | L2  | whole workspace (non-test) | `partial_cmp` on floats / raw `<` `>` inside comparator closures — use `f64::total_cmp` |
//! | L3  | error-layer crates | public API fn (free, inherent, or workspace-trait impl) that can panic without a `try_` twin or `Result` return |
//! | L4  | whole workspace (non-test) | `==` / `!=` against a float literal |
//! | L5  | `lgo-core` | `pub` item without a doc comment |
//! | L6  | whole workspace (non-test) except `lgo-runtime` internals | bare `.unwrap()`/`.expect()` on `lock()`/`read()`/`write()`/`join()` results |
//! | L7  | non-test library code of every crate except `lgo-bench` / `lgo-analyze` | bare `println!` / `eprintln!` — report through lgo-trace or return data |
//! | L8  | non-test library code of every crate except `lgo-runtime` / `lgo-serve` | `std::thread::sleep` — sleep-based waits hide stalls and break determinism |
//! | L9  | non-test library code (timing seams exempt per sub-check) | hash-ordered containers / wall-clock reads / RNG not derived from `split_seed` |
//! | L10 | whole workspace (non-test) | closure passed to a `par_*`/`scope` adapter mutates captured shared state |
//! | L11 | error-layer crates | `pub` API fn *transitively* reaches a panic through the call graph with no absorption point |
//! | L12 | `lgo-runtime` / `lgo-serve` library code | a pair of locks acquired in both orders |
//! | L13 | `lgo-nn` library code | per-timestep `.matvec()` / `.matmul()` inside a loop body — batch through `matmul_nt` / `matmul_batch` |
//!
//! L1–L8 are single-pass token rules from the original engine; L9/L10 run
//! on the [`crate::ast`] produced by [`crate::parser`] with type evidence
//! from [`crate::resolve`]; L3/L11/L12 are workspace-level passes over the
//! call graph in [`crate::callgraph`]. Test code (`#[cfg(test)]` items,
//! `#[test]` fns) is masked out first. Findings can be suppressed with a
//! trailing `// lint: allow(<rule>): <why>` comment — see [`crate::allow`].

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::parse_allows;
use crate::ast::{self, ItemKind, Node};
use crate::callgraph;
use crate::lexer::{tokenize, TokenKind};
use crate::parser::{panic_site, parse_file, test_mask, Cursor};
use crate::report::Finding;
use crate::resolve::{self, FieldTypes, TypeEnv, UseMap};

/// Which rules apply to a given file; derived from its workspace path by
/// [`FileScope::for_path`], or use [`FileScope::all`] to enforce everything
/// (explicit-file mode, fixtures). L9 splits into three independently
/// scoped sub-checks because their exemption sets differ (the timing seams
/// legitimately read clocks; nothing legitimately iterates a HashMap into
/// exported output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileScope {
    pub l1: bool,
    pub l2: bool,
    pub l3: bool,
    pub l4: bool,
    pub l5: bool,
    pub l6: bool,
    pub l7: bool,
    pub l8: bool,
    /// L9: hash-ordered container declarations and iteration.
    pub l9_hash: bool,
    /// L9: `Instant::now` / `SystemTime` wall-clock reads.
    pub l9_time: bool,
    /// L9: RNG construction not derived from `lgo_runtime::split_seed`.
    pub l9_rng: bool,
    pub l10: bool,
    pub l11: bool,
    pub l12: bool,
    /// L13: per-timestep dense products inside nn loop bodies.
    pub l13: bool,
}

/// The defense-stack library crates where a stray panic corrupts risk
/// profiles silently (L1/L3/L11 scope).
pub const LIB_CRATES: &[&str] = &[
    "core", "detect", "forecast", "nn", "tensor", "series", "cluster",
];

impl FileScope {
    /// Every rule enabled.
    pub fn all() -> Self {
        FileScope {
            l1: true,
            l2: true,
            l3: true,
            l4: true,
            l5: true,
            l6: true,
            l7: true,
            l8: true,
            l9_hash: true,
            l9_time: true,
            l9_rng: true,
            l10: true,
            l11: true,
            l12: true,
            l13: true,
        }
    }

    /// Every rule disabled — combine with struct update syntax to enable
    /// exactly the rules a fixture exercises.
    pub fn none() -> Self {
        FileScope {
            l1: false,
            l2: false,
            l3: false,
            l4: false,
            l5: false,
            l6: false,
            l7: false,
            l8: false,
            l9_hash: false,
            l9_time: false,
            l9_rng: false,
            l10: false,
            l11: false,
            l12: false,
            l13: false,
        }
    }

    /// Scope for a workspace-relative path (`crates/core/src/risk.rs`).
    ///
    /// Returns `None` for files the analyzer should not scan at all
    /// (vendored dependencies, fixture trees).
    pub fn for_path(rel: &str) -> Option<Self> {
        let rel = rel.replace('\\', "/");
        if rel.starts_with("vendor/") || rel.contains("/fixtures/") || rel.starts_with("target/") {
            return None;
        }
        let krate = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("");
        // Library source excludes binaries, integration tests and benches.
        let in_lib_src = rel.contains("/src/") && !rel.contains("/src/bin/");
        let is_test_file = rel.contains("/tests/") || rel.contains("/benches/");
        let lib_crate = LIB_CRATES.contains(&krate);
        Some(FileScope {
            l1: lib_crate && in_lib_src && !is_test_file,
            l2: !is_test_file,
            l3: lib_crate && in_lib_src && !is_test_file,
            l4: !is_test_file,
            l5: krate == "core" && in_lib_src && !is_test_file,
            // The runtime's pool internals recover from poisoning by
            // design; everywhere else a poisoned-lock panic would bypass
            // the error layer.
            l6: krate != "runtime" && !is_test_file,
            // Library code reports through lgo-trace or returns data; stdout
            // belongs to the experiment binaries (and lgo-bench / lgo-analyze
            // are presentation layers by design).
            l7: in_lib_src && !is_test_file && !matches!(krate, "bench" | "analyze"),
            // Sleep-based waiting belongs to the scheduling layers: the
            // runtime's pool and the serving stack's watchdog/backoff own
            // their timing; everywhere else a sleep hides a missing
            // condition variable and perturbs determinism.
            l8: in_lib_src && !is_test_file && !matches!(krate, "runtime" | "serve"),
            // Hash-ordered iteration leaks `RandomState` seeding into any
            // ordered or exported output; library code uses BTree
            // containers (or sorts explicitly) everywhere.
            l9_hash: in_lib_src && !is_test_file,
            // Wall-clock reads belong to the timing seams the trace layer
            // already masks under `timing`; everywhere else they are
            // nondeterminism that byte-identity tests cannot see.
            l9_time: in_lib_src && !is_test_file && !matches!(krate, "runtime" | "trace" | "serve"),
            // Every random stream derives from `lgo_runtime::split_seed`;
            // entropy-seeded or constant-seeded generators in library code
            // break per-task stream independence.
            l9_rng: in_lib_src && !is_test_file,
            l10: !is_test_file,
            l11: lib_crate && in_lib_src && !is_test_file,
            // Lock-order discipline is owned by the two crates that hold
            // locks across work: the runtime pool and the serving stack.
            l12: matches!(krate, "runtime" | "serve") && in_lib_src && !is_test_file,
            // Recurrent cells are the one place a per-timestep matvec in a
            // loop silently costs a batched-matmul's worth of throughput;
            // the batched forward paths exist precisely to avoid it.
            l13: krate == "nn" && in_lib_src && !is_test_file,
        })
    }
}

/// One file queued for analysis: its workspace-relative path, source text,
/// and rule scope.
pub struct FileInput {
    pub path: String,
    pub src: String,
    pub scope: FileScope,
}

/// Runs every in-scope rule over one file's source text. Single-file
/// convenience over [`analyze_files`]; interprocedural rules (L3/L11/L12)
/// see only this file's call graph.
pub fn analyze_source(file: &str, src: &str, scope: FileScope) -> Vec<Finding> {
    analyze_files(&[FileInput {
        path: file.to_string(),
        src: src.to_string(),
        scope,
    }])
}

/// The two-pass engine. Pass 1 walks each file independently: token rules
/// (L1/L2/L4/L6/L7/L8), doc rule (L5), AST determinism rules (L9/L10), and
/// fact collection for the call graph. Pass 2 runs the workspace-level
/// rules (L3 with trait impls, L11 panic reachability, L12 lock order)
/// over the combined facts, then applies each file's allow directives and
/// the allowlist hygiene rules (A0/A1).
pub fn analyze_files(inputs: &[FileInput]) -> Vec<Finding> {
    let tokenized: Vec<_> = inputs.iter().map(|f| tokenize(&f.src)).collect();

    let mut raw: Vec<Finding> = Vec::new();
    let mut facts: Vec<callgraph::FnFact> = Vec::new();
    let mut traits: BTreeSet<String> = BTreeSet::new();
    let mut allows_by_file = Vec::with_capacity(inputs.len());
    let mut l3_files: BTreeSet<usize> = BTreeSet::new();
    let mut l11_files: BTreeSet<usize> = BTreeSet::new();
    let mut l12_files: BTreeSet<usize> = BTreeSet::new();

    for (idx, input) in inputs.iter().enumerate() {
        let tokens = &tokenized[idx];
        let (file_ast, cur) = parse_file(tokens);
        let mask = test_mask(&cur);
        let allows = parse_allows(tokens);
        let scope = input.scope;
        let path = input.path.as_str();

        site_rules(path, &cur, &mask, scope, &mut raw);
        if scope.l5 {
            rule_l5(path, &cur, &mask, &mut raw);
        }
        if scope.l9_hash {
            rule_l9_hash(path, &cur, &file_ast, &mask, &mut raw);
        }
        if scope.l10 {
            rule_l10(path, &cur, &file_ast, &mask, &mut raw);
        }
        callgraph::collect_facts(idx, path, &file_ast, &cur, &mask, &allows, &mut facts);
        callgraph::pub_traits(&file_ast, &mut traits);
        if scope.l3 {
            l3_files.insert(idx);
        }
        if scope.l11 {
            l11_files.insert(idx);
        }
        if scope.l12 {
            l12_files.insert(idx);
        }
        allows_by_file.push(allows);
    }

    let graph = callgraph::CallGraph::build(&facts);
    callgraph::rule_l3(&graph, &l3_files, &traits, &mut raw);
    callgraph::rule_l11(&graph, &l11_files, &mut raw);
    callgraph::rule_l12(&graph, &l12_files, &mut raw);

    // Apply the allowlists: a finding survives unless a directive on its
    // line (in its file) names its rule. Identical (file, line, rule)
    // findings collapse to the first.
    let path_index: BTreeMap<&str, usize> = inputs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path.as_str(), i))
        .collect();
    let mut findings: Vec<Finding> = Vec::new();
    let mut seen: BTreeSet<(String, usize, &'static str)> = BTreeSet::new();
    for f in raw {
        let mut suppressed = false;
        if let Some(&idx) = path_index.get(f.file.as_str()) {
            for a in allows_by_file[idx].iter_mut() {
                if a.covers(f.rule, f.line) {
                    a.used = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed && seen.insert((f.file.clone(), f.line, f.rule)) {
            findings.push(f);
        }
    }
    // Allowlist hygiene.
    for (idx, allows) in allows_by_file.iter().enumerate() {
        let path = inputs[idx].path.as_str();
        for a in allows {
            if a.malformed {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.line,
                    rule: "A0",
                    message: "malformed lint directive; expected `// lint: allow(L<n>): <why>`"
                        .to_string(),
                });
            } else if a.justification.is_empty() {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.line,
                    rule: "A0",
                    message: format!(
                        "allow({}) directive is missing its mandatory justification",
                        a.rules.join(", ")
                    ),
                });
            } else if !a.used {
                findings.push(Finding {
                    file: path.to_string(),
                    line: a.line,
                    rule: "A1",
                    message: format!(
                        "allow({}) directive suppresses nothing; remove it",
                        a.rules.join(", ")
                    ),
                });
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

/// Comparator-style adapters whose closure must not use raw `<` / `>`.
const COMPARATOR_FNS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Marks every significant-token index lexically inside a `for` / `while` /
/// `loop` body (headers — the iterated expression or condition — are not
/// marked). `impl Trait for Type` and HRTB `for<'a>` are excluded by
/// requiring a depth-0 `in` between `for` and its body brace. Nested loops
/// union their ranges, and tokens inside closures within a loop body count
/// as in-loop: the products still run once per iteration.
fn loop_body_mask(cur: &Cursor) -> Vec<bool> {
    let mut mask = vec![false; cur.n()];
    for i in 0..cur.n() {
        let open = match cur.text(i) {
            "loop" if cur.text_at(i as isize + 1) == "{" => Some(i + 1),
            kw @ ("for" | "while") => loop_header_end(cur, i, kw == "for"),
            _ => None,
        };
        if let Some(open) = open {
            let close = cur.match_brace(open);
            for m in &mut mask[open + 1..close] {
                *m = true;
            }
        }
    }
    mask
}

/// From a `for` / `while` keyword at `kw`, the index of the body `{`: the
/// first depth-0 brace, provided a depth-0 `in` was seen first when
/// `needs_in` (distinguishing a for-loop from `impl .. for ..` and
/// `for<'a>` bounds). `None` when the header is not a loop header.
fn loop_header_end(cur: &Cursor, kw: usize, needs_in: bool) -> Option<usize> {
    let mut depth = 0isize;
    let mut saw_in = false;
    for j in kw + 1..cur.n() {
        match cur.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => saw_in = true,
            ";" if depth == 0 => return None,
            "{" if depth == 0 => return (saw_in || !needs_in).then_some(j),
            _ => {}
        }
    }
    None
}

/// Single pass emitting the site-local token rules: L1, L2, L4, L6, L7,
/// L8, L13, and L9's wall-clock / RNG sub-checks.
fn site_rules(
    file: &str,
    cur: &Cursor,
    test_mask: &[bool],
    scope: FileScope,
    out: &mut Vec<Finding>,
) {
    let n = cur.n();
    let in_loop = if scope.l13 { loop_body_mask(cur) } else { Vec::new() };
    for (i, &masked) in test_mask.iter().enumerate() {
        if masked {
            continue;
        }
        let t = cur.tok(i);
        // L1: panic-family call sites.
        if scope.l1 {
            if let Some(name) = panic_site(cur, i) {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L1",
                    message: format!(
                        "found `{name}` in library code; return a Result through the error \
                         layer (or justify with `// lint: allow(L1): <why>`)"
                    ),
                });
            }
        }
        // L2: NaN-unsound float ordering.
        if scope.l2 && t.kind == TokenKind::Ident {
            if t.text == "partial_cmp" {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L2",
                    message: "`partial_cmp` on floats is NaN-unsound; use `f64::total_cmp` \
                              (or `Ord::cmp` for non-float keys)"
                        .to_string(),
                });
            } else if COMPARATOR_FNS.contains(&t.text.as_str())
                && cur.text_at(i as isize + 1) == "("
                && cur.text_at(i as isize + 2) == "|"
            {
                let close = cur.match_paren(i + 1);
                for j in i + 2..close {
                    let op = cur.text(j);
                    if matches!(op, "<" | ">" | "<=" | ">=") && cur.text_at(j as isize - 1) != "::"
                    {
                        out.push(Finding {
                            file: file.to_string(),
                            line: cur.tok(j).line,
                            rule: "L2",
                            message: format!(
                                "raw `{op}` inside a `{}` comparator is NaN-unsound; \
                                 use `total_cmp`/`cmp`",
                                t.text
                            ),
                        });
                    }
                }
            }
        }
        // L6: panicking on synchronization results. A poisoned Mutex or a
        // panicked worker thread surfaces as an Err, and a bare unwrap
        // turns one task's failure into a process abort; recover with
        // `PoisonError::into_inner` or route through the error layer.
        if scope.l6 {
            if let Some(name) = panic_site(cur, i) {
                let method = cur.text_at(i as isize - 4);
                if (name == ".unwrap()" || name == ".expect()")
                    && cur.text_at(i as isize - 2) == ")"
                    && cur.text_at(i as isize - 3) == "("
                    && matches!(method, "lock" | "read" | "write" | "join")
                    && cur.text_at(i as isize - 5) == "."
                {
                    out.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "L6",
                        message: format!(
                            "bare `{name}` on a `.{method}()` result panics on lock \
                             poisoning / thread panic; recover (e.g. \
                             `PoisonError::into_inner`) or justify with \
                             `// lint: allow(L6): <why>`"
                        ),
                    });
                }
            }
        }
        // L7: stdout/stderr noise in library code. Defense-crate libraries
        // run inside parallel pipelines; prints interleave across workers
        // and bypass the structured trace layer. (`::println!` from a macro
        // path is not a bare call site and is left alone, like `::panic!`
        // in L1.)
        if scope.l7
            && t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && cur.text_at(i as isize + 1) == "!"
            && cur.text_at(i as isize - 1) != "::"
        {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: "L7",
                message: format!(
                    "bare `{}!` in library code; record through lgo-trace (or justify \
                     with `// lint: allow(L7): <why>`)",
                    t.text
                ),
            });
        }
        // L8: sleep-based waits in library code. A sleep is either a
        // disguised synchronization primitive (use a Condvar or the
        // runtime's watchdog machinery) or a tuning hack that stalls
        // differently on every machine; both hide real stalls from the
        // deadline/trace layers. Covers `thread::sleep(...)` (qualified)
        // and a bare imported `sleep(...)` call; `.sleep()` methods and
        // `fn sleep` definitions are not thread sleeps.
        if scope.l8 && t.kind == TokenKind::Ident && t.text == "sleep"
            && cur.text_at(i as isize + 1) == "("
        {
            let prev = cur.text_at(i as isize - 1);
            let qualified = prev == "::" && cur.text_at(i as isize - 2) == "thread";
            let bare = !matches!(prev, "::" | "." | "fn");
            if qualified || bare {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L8",
                    message: "`thread::sleep` in library code hides stalls and breaks \
                              determinism; wait on a Condvar / deadline instead (or \
                              justify with `// lint: allow(L8): <why>`)"
                        .to_string(),
                });
            }
        }
        // L13: per-timestep dense products in recurrent loops. A
        // `.matvec(..)` (or square `.matmul(..)`) inside a loop body
        // re-walks the whole weight matrix once per timestep; the batched
        // forward paths hoist the input-side products into one tiled
        // `matmul_nt` / `matmul_batch` call that is bitwise identical and
        // several times faster. Only the exact method names are flagged —
        // `matmul_nt` / `matmul_tiled` / `matmul_batch` /
        // `matvec_transpose` are the batched/tiled replacements.
        if scope.l13
            && t.kind == TokenKind::Ident
            && matches!(t.text.as_str(), "matvec" | "matmul")
            && cur.text_at(i as isize + 1) == "("
            && cur.text_at(i as isize - 1) == "."
            && in_loop.get(i).copied().unwrap_or(false)
        {
            out.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: "L13",
                message: format!(
                    "`.{}()` inside a loop re-walks the weight matrix every \
                     timestep; batch the products through `matmul_nt` / \
                     `matmul_batch` (e.g. the cell's `forward_batch` path) \
                     or justify with `// lint: allow(L13): <why>`",
                    t.text
                ),
            });
        }
        // L9 (time): wall-clock reads outside the timing seams. Catches
        // both the call form `Instant::now()` and the fn-pointer form
        // `.then(Instant::now)`.
        if scope.l9_time && t.kind == TokenKind::Ident {
            if t.text == "Instant"
                && cur.text_at(i as isize + 1) == "::"
                && cur.text_at(i as isize + 2) == "now"
            {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L9",
                    message: "`Instant::now` outside the runtime/trace/serve timing seams; \
                              wall-clock reads are nondeterministic — measure in the trace \
                              layer (or justify with `// lint: allow(L9): <why>`)"
                        .to_string(),
                });
            } else if t.text == "SystemTime" && cur.text_at(i as isize + 1) == "::" {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L9",
                    message: "`SystemTime` outside the runtime/trace/serve timing seams; \
                              wall-clock reads are nondeterministic (or justify with \
                              `// lint: allow(L9): <why>`)"
                        .to_string(),
                });
            }
        }
        // L9 (rng): generators not derived from `lgo_runtime::split_seed`.
        // Entropy sources are nondeterministic outright; a *constant* seed
        // in library code collapses every task onto one stream, breaking
        // the per-task independence `split_seed` provides.
        if scope.l9_rng && t.kind == TokenKind::Ident && cur.text_at(i as isize + 1) == "(" {
            match t.text.as_str() {
                "thread_rng" | "from_entropy" => {
                    out.push(Finding {
                        file: file.to_string(),
                        line: t.line,
                        rule: "L9",
                        message: format!(
                            "`{}` is an entropy-seeded RNG; derive every stream from \
                             `lgo_runtime::split_seed` (or justify with \
                             `// lint: allow(L9): <why>`)",
                            t.text
                        ),
                    });
                }
                "seed_from_u64" | "from_seed" => {
                    let close = cur.match_paren(i + 1);
                    let all_literal = (i + 2..close).all(|j| {
                        matches!(cur.tok(j).kind, TokenKind::NumLit { .. })
                            || matches!(cur.text(j), "," | "(" | ")" | "[" | "]" | "-" | "+")
                    }) && (i + 2..close)
                        .any(|j| matches!(cur.tok(j).kind, TokenKind::NumLit { .. }));
                    if all_literal {
                        out.push(Finding {
                            file: file.to_string(),
                            line: t.line,
                            rule: "L9",
                            message: format!(
                                "`{}` with a constant seed in library code; derive the \
                                 seed from `lgo_runtime::split_seed(base, index)` so \
                                 streams stay per-task independent (or justify with \
                                 `// lint: allow(L9): <why>`)",
                                t.text
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        // L4: float literal equality.
        if scope.l4 && t.kind == TokenKind::Op && (t.text == "==" || t.text == "!=") {
            let float_neighbor = |j: isize| -> bool {
                if j < 0 || j as usize >= n {
                    return false;
                }
                matches!(cur.tok(j as usize).kind, TokenKind::NumLit { is_float: true })
            };
            if float_neighbor(i as isize - 1) || float_neighbor(i as isize + 1) {
                out.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "L4",
                    message: format!(
                        "`{}` against a float literal; compare with an epsilon or justify \
                         exact comparison with `// lint: allow(L4): <why>`",
                        t.text
                    ),
                });
            }
        }
    }
}

/// Methods that iterate a container in storage order.
const ITER_METHODS: &[&str] = &[
    "iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "into_keys",
    "into_values", "drain", "retain",
];

/// Chain terminals whose result is independent of iteration order.
const ORDER_INSENSITIVE: &[&str] = &[
    "sum", "product", "count", "len", "max", "min", "max_by", "max_by_key", "min_by",
    "min_by_key", "all", "any",
];

/// Sorting methods that launder iteration order out of a collected Vec.
const SORTS: &[&str] = &["sort", "sort_by", "sort_unstable", "sort_unstable_by", "sort_by_key"];

/// L9 (hash): hash-ordered containers in deterministic library code.
///
/// Two prongs. *Declarations*: a `let` binding or struct field typed (or
/// constructor-inferred) as `HashMap`/`HashSet` — storage whose order can
/// leak into exported output one refactor later; require BTree containers.
/// *Iteration*: any in-order walk (`iter`/`keys`/`for`) of a hash-typed
/// value — parameters and fields included — unless the chain terminates
/// order-insensitively (`sum`, `count`, ...), collects back into a keyed
/// container, or the collected Vec is explicitly sorted afterwards.
fn rule_l9_hash(
    file: &str,
    cur: &Cursor,
    file_ast: &ast::File,
    test_mask: &[bool],
    out: &mut Vec<Finding>,
) {
    let uses = UseMap::from_file(file_ast);
    let fields = FieldTypes::from_file(file_ast);
    let is_hash = |ty: &str| -> bool {
        ty.split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| !w.is_empty() && uses.is_hash_alias(w))
    };
    let masked = |idx: usize| *test_mask.get(idx).unwrap_or(&false);

    // Declarations: struct fields.
    declaration_scan(&file_ast.items, &is_hash, &mut |line, span_start, field, ty| {
        if !masked(span_start) {
            out.push(Finding {
                file: file.to_string(),
                line,
                rule: "L9",
                message: format!(
                    "field `{field}: {ty}` is hash-ordered; iteration order is \
                     nondeterministic across runs — use BTreeMap/BTreeSet (or justify \
                     with `// lint: allow(L9): <why>`)",
                    ty = compact_ty(ty),
                ),
            });
        }
    });

    for (im, f) in file_ast.all_fns() {
        let Some(body) = &f.body else { continue };
        if masked(body.span.start) {
            continue;
        }
        let env = TypeEnv::for_fn(cur, f, im);
        // Declarations: let bindings (annotated or constructor-inferred).
        for node in &body.nodes {
            let Node::Let { name, ty, init, line, .. } = node else { continue };
            if masked(init.start.min(cur.n().saturating_sub(1))) {
                continue;
            }
            let effective = if !ty.is_empty() {
                ty.clone()
            } else {
                resolve::infer_init_type(cur, *init).unwrap_or_default()
            };
            if is_hash(&effective) {
                let what = if name.is_empty() { "binding" } else { name.as_str() };
                out.push(Finding {
                    file: file.to_string(),
                    line: *line,
                    rule: "L9",
                    message: format!(
                        "`{what}` is a hash-ordered container ({}); use BTreeMap/BTreeSet \
                         or sort before anything order-dependent (or justify with \
                         `// lint: allow(L9): <why>`)",
                        compact_ty(&effective),
                    ),
                });
            }
        }
        // Iteration: method walks and for-loops over hash-typed values.
        let hash_recv = |recv: &str, at: usize| -> bool {
            let r = recv.trim_start_matches('&');
            if let Some(field) = r.strip_prefix("self.") {
                if !field.contains('.') && !field.contains('(') {
                    if let Some(ty) = im.and_then(|i| fields.field_type(&i.self_ty, field)) {
                        return is_hash(ty);
                    }
                }
                return false;
            }
            if r.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return env.type_of(r, at).is_some_and(&is_hash);
            }
            false
        };
        for node in &body.nodes {
            match node {
                Node::MethodCall { recv, name, span, line, .. } => {
                    if !ITER_METHODS.contains(&name.as_str())
                        || masked(span.start)
                        || !hash_recv(recv, span.start)
                    {
                        continue;
                    }
                    if iteration_excused(cur, &body.nodes, span, &uses) {
                        continue;
                    }
                    out.push(Finding {
                        file: file.to_string(),
                        line: *line,
                        rule: "L9",
                        message: format!(
                            "`.{name}()` iterates a hash-ordered container in storage \
                             order; the order differs across runs — use a BTree container \
                             or an order-insensitive reduction (or justify with \
                             `// lint: allow(L9): <why>`)"
                        ),
                    });
                }
                Node::For { iter_text, iter, line, .. } => {
                    if masked(iter.start) {
                        continue;
                    }
                    let t = iter_text.trim_start_matches('&');
                    let t = t.strip_prefix("mut").unwrap_or(t);
                    if hash_recv(t, iter.start) {
                        out.push(Finding {
                            file: file.to_string(),
                            line: *line,
                            rule: "L9",
                            message: format!(
                                "`for` loop over hash-ordered `{t}`; iteration order \
                                 differs across runs — use a BTree container (or justify \
                                 with `// lint: allow(L9): <why>`)"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

/// Walks items collecting hash-typed struct fields.
fn declaration_scan(
    items: &[ast::Item],
    is_hash: &dyn Fn(&str) -> bool,
    emit: &mut dyn FnMut(usize, usize, &str, &str),
) {
    for item in items {
        match &item.kind {
            ItemKind::Struct(s) => {
                for (field, ty) in &s.fields {
                    if is_hash(ty) {
                        emit(item.line, item.span.start, field, ty);
                    }
                }
            }
            ItemKind::Mod(m) => declaration_scan(&m.items, is_hash, emit),
            _ => {}
        }
    }
}

/// Whether a hash-iteration chain is excused: terminated by an
/// order-insensitive reduction, collected back into a keyed container, or
/// bound to a Vec that is explicitly sorted later in the body.
fn iteration_excused(
    cur: &Cursor,
    nodes: &[Node],
    iter_span: &ast::Span,
    uses: &UseMap,
) -> bool {
    for node in nodes {
        let Node::MethodCall { name, span, args, .. } = node else { continue };
        if !span.contains(*iter_span) || span == iter_span {
            continue;
        }
        if ORDER_INSENSITIVE.contains(&name.as_str()) {
            return true;
        }
        if name == "collect" {
            // The turbofish (or the binding's annotation, handled by the
            // declaration prong) names the target; keyed containers
            // (BTree* re-sorts, Hash* stays unordered) are both fine here.
            for i in span.start..args.start {
                let t = cur.text(i);
                if t.starts_with("BTree") || uses.is_hash_alias(t) {
                    return true;
                }
            }
        }
    }
    // Sorted-Vec laundering: `let v = m.iter()...collect(); v.sort();`.
    for node in nodes {
        let Node::Let { name, init, scope_end, .. } = node else { continue };
        if name.is_empty() || !init.contains(*iter_span) {
            continue;
        }
        let sorted = nodes.iter().any(|n| {
            matches!(
                n,
                Node::MethodCall { recv_base, name: m, span, .. }
                    if recv_base == name
                        && SORTS.contains(&m.as_str())
                        && span.start > init.end
                        && span.end <= *scope_end
            )
        });
        if sorted {
            return true;
        }
    }
    false
}

fn compact_ty(ty: &str) -> String {
    ty.split_whitespace().collect::<Vec<_>>().join("")
}

/// Deterministic-parallelism adapters whose closures L10 inspects.
const PAR_ADAPTERS: &[&str] = &[
    "par_map",
    "try_par_map",
    "par_map_indexed",
    "try_par_map_indexed",
    "par_chunks",
    "try_par_chunks",
    "par_index_pairs",
    "try_par_index_pairs",
    "scope",
    "try_scope",
];

/// Methods that mutate (or expose mutation of) shared state from inside a
/// parallel closure.
const MUT_METHODS: &[&str] = &[
    "lock",
    "borrow_mut",
    "write",
    "store",
    "swap",
    "set",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "get_mut",
];

/// L10: a closure passed to a `par_*`/`scope` adapter must not touch
/// captured shared mutable state — the interleaving of those touches is
/// schedule-dependent even when each touch is individually synchronized.
/// The two blessed patterns pass: *index-addressed slots* (`slots[i]` —
/// each task owns its slot, so order cannot matter) and state the closure
/// owns (its parameters, or locals declared inside it).
fn rule_l10(
    file: &str,
    cur: &Cursor,
    file_ast: &ast::File,
    test_mask: &[bool],
    out: &mut Vec<Finding>,
) {
    let masked = |idx: usize| *test_mask.get(idx).unwrap_or(&false);
    for (_, f) in file_ast.all_fns() {
        let Some(body) = &f.body else { continue };
        if masked(body.span.start) {
            continue;
        }
        // Argument spans of every par-adapter call in this body.
        let mut adapter_args: Vec<(ast::Span, String)> = Vec::new();
        for node in &body.nodes {
            match node {
                Node::MethodCall { name, args, span, .. }
                    if PAR_ADAPTERS.contains(&name.as_str()) && !masked(span.start) =>
                {
                    adapter_args.push((*args, name.clone()));
                }
                Node::Call { path, args, span, .. } if !masked(span.start) => {
                    if let Some(last) = path.last() {
                        if PAR_ADAPTERS.contains(&last.as_str()) {
                            adapter_args.push((*args, last.clone()));
                        }
                    }
                }
                _ => {}
            }
        }
        if adapter_args.is_empty() {
            continue;
        }
        for (args, adapter) in &adapter_args {
            for node in &body.nodes {
                let Node::Closure { params, body: cbody, span, .. } = node else { continue };
                if !args.contains(*span) {
                    continue;
                }
                let own_params = resolve::closure_param_names(params);
                for inner in &body.nodes {
                    let Node::MethodCall { recv, recv_base, name, span: mspan, line, .. } = inner
                    else {
                        continue;
                    };
                    if !cbody.contains(*mspan)
                        || !MUT_METHODS.contains(&name.as_str())
                        || masked(mspan.start)
                    {
                        continue;
                    }
                    // Index-addressed slot: each task writes its own cell.
                    if recv.contains("[_]") {
                        continue;
                    }
                    // State the closure owns: a parameter, or a local
                    // declared inside the closure body.
                    if own_params.iter().any(|p| p == recv_base) {
                        continue;
                    }
                    let local = body.nodes.iter().any(|n| {
                        matches!(
                            n,
                            Node::Let { name: ln, init, .. }
                                if ln == recv_base && cbody.contains_idx(init.start)
                        )
                    });
                    if local {
                        continue;
                    }
                    let target = if recv.is_empty() { recv_base } else { recv };
                    out.push(Finding {
                        file: file.to_string(),
                        line: *line,
                        rule: "L10",
                        message: format!(
                            "closure passed to `{adapter}` calls `.{name}()` on captured \
                             `{target}`; shared-state mutation is schedule-dependent — \
                             use index-addressed slots or reduce over returned values \
                             (or justify with `// lint: allow(L10): <why>`)"
                        ),
                    });
                }
            }
        }
        let _ = cur;
    }
}

/// Item keywords L5 requires documentation on.
const DOC_ITEMS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "mod", "static", "const", "union",
];

/// L5: every `pub` item in `lgo-core` carries a doc comment.
fn rule_l5(file: &str, cur: &Cursor, test_mask: &[bool], out: &mut Vec<Finding>) {
    let n = cur.n();
    for (i, &masked) in test_mask.iter().enumerate() {
        if masked || cur.text(i) != "pub" {
            continue;
        }
        if cur.text_at(i as isize + 1) == "(" {
            continue; // pub(crate) / pub(super)
        }
        // Find the item keyword, skipping qualifiers.
        let mut j = i + 1;
        while j < n
            && (matches!(cur.text(j), "async" | "unsafe" | "extern")
                || cur.tok(j).kind == TokenKind::StrLit)
        {
            j += 1;
        }
        let Some(kw) = (j < n).then(|| cur.text(j)) else {
            continue;
        };
        // `pub const fn` -> fn; `pub const NAME` -> const.
        let kw = if kw == "const" && cur.text_at(j as isize + 1) == "fn" { "fn" } else { kw };
        if !DOC_ITEMS.contains(&kw) {
            continue; // `pub use` re-exports, struct fields, enum variants...
        }
        let name = if j + 1 < n && cur.tok(j + 1).kind == TokenKind::Ident {
            cur.text(j + 1).to_string()
        } else {
            kw.to_string()
        };
        if !has_doc_before(cur, i) {
            out.push(Finding {
                file: file.to_string(),
                line: cur.tok(i).line,
                rule: "L5",
                message: format!("public item `{name}` lacks a doc comment (`///`)"),
            });
        }
    }
}

/// Walks backwards from the `pub` at sig index `i`, skipping attributes and
/// plain comments, looking for a doc comment.
fn has_doc_before(cur: &Cursor, i: usize) -> bool {
    // Position in the full (comment-bearing) token stream.
    let mut f = cur.sig[i];
    while f > 0 {
        f -= 1;
        let t = &cur.tokens[f];
        match t.kind {
            // Inner docs (`//!`, `/*!`) document the enclosing module, not
            // the item that happens to follow them.
            TokenKind::DocComment => {
                if t.text.starts_with("//!") || t.text.starts_with("/*!") {
                    continue;
                }
                return true;
            }
            TokenKind::LineComment | TokenKind::BlockComment => continue,
            TokenKind::Op if t.text == "]" => {
                // Skip an attribute `#[ ... ]` (or inner `#![ ... ]`).
                let mut depth = 1isize;
                while f > 0 && depth > 0 {
                    f -= 1;
                    match cur.tokens[f].text.as_str() {
                        "]" => depth += 1,
                        "[" => depth -= 1,
                        _ => {}
                    }
                }
                if f > 0 && cur.tokens[f - 1].text == "!" {
                    f -= 1;
                }
                if f > 0 && cur.tokens[f - 1].text == "#" {
                    f -= 1;
                }
            }
            _ => return false,
        }
    }
    false
}
