//! A hand-rolled Rust lexer.
//!
//! The analyzer runs in the same offline environment as the rest of the
//! workspace, so it cannot lean on `syn`/`proc-macro2`. Instead this module
//! tokenizes Rust source directly. It is not a full parser: the lint rules
//! (see [`crate::rules`]) only need a faithful token stream with line
//! numbers, correct comment/string/char-literal boundaries, and enough
//! number-literal classification to recognise floats.
//!
//! The tricky corners handled here, each covered by a unit test:
//!
//! * line vs. outer-doc (`///`) vs. inner-doc (`//!`) comments;
//! * nested block comments (`/* /* */ */` is one comment);
//! * string escapes (`"\""`), raw strings (`r#"..."#`) and byte strings;
//! * lifetimes vs. char literals (`'a` vs. `'a'` vs. `'\n'`);
//! * raw identifiers (`r#fn`) vs. raw strings (`r#"..."`);
//! * float classification (`1.0`, `1.`, `1e-3`, `2f64`) vs. integer
//!   literals, ranges (`0..10`) and method calls on integers.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// Lifetime such as `'a` or `'static` (without trailing quote).
    Lifetime,
    /// Character literal such as `'x'` or `'\n'`.
    CharLit,
    /// String literal (regular, raw, byte, or raw-byte).
    StrLit,
    /// Number literal; `is_float` distinguishes `1.0` from `1`.
    NumLit { is_float: bool },
    /// Operator or punctuation, possibly multi-char (`==`, `->`, `::`).
    Op,
    /// Non-doc line comment (`// ...`), text includes the slashes.
    LineComment,
    /// Doc comment: `/// ...`, `//! ...`, `/** */`, or `/*! */`.
    DocComment,
    /// Non-doc block comment, nesting already consumed.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: usize,
}

impl Token {
    /// True for comment tokens (which most rules skip).
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment | TokenKind::BlockComment | TokenKind::DocComment
        )
    }
}

/// Tokenizes `src`, never failing: unterminated literals are closed at EOF.
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    out: Vec<Token>,
}

// Multi-char operators, longest first so greedy matching is correct.
const OPS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

impl Lexer {
    fn new(src: &str) -> Self {
        Self {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: usize) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(start, line),
                '/' if self.peek(1) == Some('*') => self.block_comment(start, line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::StrLit, start, line);
                }
                'r' if self.is_raw_string(0) => {
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::StrLit, start, line);
                }
                'b' if self.peek(1) == Some('r') && self.is_raw_string(1) => {
                    self.bump();
                    self.bump();
                    self.raw_string_body();
                    self.push(TokenKind::StrLit, start, line);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.bump();
                    self.char_body();
                    self.push(TokenKind::CharLit, start, line);
                }
                'r' if self.peek(1) == Some('#') && self.peek(2).is_some_and(is_ident_start) => {
                    // Raw identifier `r#fn`.
                    self.bump();
                    self.bump();
                    self.ident_body();
                    self.push(TokenKind::Ident, start, line);
                }
                '\'' => self.lifetime_or_char(start, line),
                c if c.is_ascii_digit() => self.number(start, line),
                c if is_ident_start(c) => {
                    self.ident_body();
                    self.push(TokenKind::Ident, start, line);
                }
                _ => self.operator(start, line),
            }
        }
        self.out
    }

    /// At `self.pos + off` sits an `r`; is it the start of a raw string?
    fn is_raw_string(&self, off: usize) -> bool {
        let mut i = off + 1;
        while self.peek(i) == Some('#') {
            i += 1;
        }
        self.peek(i) == Some('"')
    }

    fn line_comment(&mut self, start: usize, line: usize) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        // `///` (but not `////`) and `//!` are doc comments.
        let kind = if (text.starts_with("///") && !text.starts_with("////"))
            || text.starts_with("//!")
        {
            TokenKind::DocComment
        } else {
            TokenKind::LineComment
        };
        self.out.push(Token { kind, text, line });
    }

    fn block_comment(&mut self, start: usize, line: usize) {
        self.bump(); // '/'
        self.bump(); // '*'
        let is_doc = matches!(self.peek(0), Some('*') if self.peek(1) != Some('*') && self.peek(1) != Some('/'))
            || self.peek(0) == Some('!');
        let mut depth = 1_usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        let kind = if is_doc {
            TokenKind::DocComment
        } else {
            TokenKind::BlockComment
        };
        self.push(kind, start, line);
    }

    /// Consumes a string body after the opening `"`, honouring `\` escapes.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Consumes `#*"..."#*` after the leading `r` has been eaten.
    fn raw_string_body(&mut self) {
        let mut hashes = 0;
        while self.peek(0) == Some('#') {
            self.bump();
            hashes += 1;
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Consumes a char-literal body after the opening `'`.
    fn char_body(&mut self) {
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump();
            // Multi-char escapes (`\x41`, `\u{1F600}`) run to the quote.
            while let Some(c) = self.peek(0) {
                if c == '\'' {
                    break;
                }
                self.bump();
            }
        } else {
            self.bump();
        }
        if self.peek(0) == Some('\'') {
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` / `'static` (lifetime).
    fn lifetime_or_char(&mut self, start: usize, line: usize) {
        self.bump(); // opening quote
        if self.peek(0) == Some('\\') {
            self.char_body();
            self.push(TokenKind::CharLit, start, line);
            return;
        }
        // `'x'` — exactly one char then a closing quote — is a char literal;
        // `'ident` with no closing quote is a lifetime.
        if self.peek(1) == Some('\'') && self.peek(0).is_some() {
            self.bump();
            self.bump();
            self.push(TokenKind::CharLit, start, line);
            return;
        }
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        self.push(TokenKind::Lifetime, start, line);
    }

    fn ident_body(&mut self) {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
    }

    fn number(&mut self, start: usize, line: usize) {
        let mut is_float = false;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            // Hex / octal / binary: never floats.
            self.bump();
            self.bump();
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
                self.bump();
            }
            self.push(TokenKind::NumLit { is_float: false }, start, line);
            return;
        }
        self.digits();
        // Fractional part: `1.5` and trailing `1.` are floats, but `0..10`
        // (range) and `1.max(2)` (method call) are not.
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some(c) if c.is_ascii_digit() => {
                    self.bump();
                    self.digits();
                    is_float = true;
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    self.bump();
                    is_float = true;
                }
            }
        }
        // Exponent.
        if matches!(self.peek(0), Some('e' | 'E')) {
            let (a, b) = (self.peek(1), self.peek(2));
            let has_exp = matches!(a, Some(c) if c.is_ascii_digit())
                || (matches!(a, Some('+' | '-')) && matches!(b, Some(c) if c.is_ascii_digit()));
            if has_exp {
                self.bump();
                if matches!(self.peek(0), Some('+' | '-')) {
                    self.bump();
                }
                self.digits();
                is_float = true;
            }
        }
        // Suffix (`f32`, `f64`, `u8`, `usize`, ...).
        let suffix_start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.bump();
        }
        let suffix: String = self.chars[suffix_start..self.pos].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        self.push(TokenKind::NumLit { is_float }, start, line);
    }

    fn digits(&mut self) {
        while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
            self.bump();
        }
    }

    fn operator(&mut self, start: usize, line: usize) {
        for op in OPS {
            if op
                .chars()
                .enumerate()
                .all(|(i, c)| self.peek(i) == Some(c))
            {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokenKind::Op, start, line);
                return;
            }
        }
        self.bump();
        self.push(TokenKind::Op, start, line);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Non-comment tokens as `(kind, text)` pairs, for compact assertions.
    fn sig(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .filter(|t| !t.is_comment())
            .map(|t| (t.kind, t.text))
            .collect()
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn line_vs_doc_comments() {
        assert_eq!(kinds("// plain\n"), vec![TokenKind::LineComment]);
        assert_eq!(kinds("/// outer doc\n"), vec![TokenKind::DocComment]);
        assert_eq!(kinds("//! inner doc\n"), vec![TokenKind::DocComment]);
        // Four slashes is a plain comment again (rustdoc convention).
        assert_eq!(kinds("//// rule\n"), vec![TokenKind::LineComment]);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = tokenize("/* outer /* inner */ still outer */ fn");
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert!(toks[0].text.ends_with("outer */"));
        assert_eq!(toks[1].text, "fn");
    }

    #[test]
    fn block_doc_comments() {
        assert_eq!(kinds("/** docs */"), vec![TokenKind::DocComment]);
        assert_eq!(kinds("/*! inner */"), vec![TokenKind::DocComment]);
        assert_eq!(kinds("/* plain */"), vec![TokenKind::BlockComment]);
        // `/**/` is an empty plain comment, not a doc comment.
        assert_eq!(kinds("/**/"), vec![TokenKind::BlockComment]);
    }

    #[test]
    fn string_escapes_do_not_end_the_literal() {
        let toks = sig(r#"let s = "quote \" inside";"#);
        let lit = toks.iter().find(|(k, _)| *k == TokenKind::StrLit).unwrap();
        assert_eq!(lit.1, r#""quote \" inside""#);
    }

    #[test]
    fn raw_strings_ignore_escapes_and_match_hashes() {
        let toks = sig(r##"let s = r#"has "quotes" and \ slashes"#;"##);
        let lit = toks.iter().find(|(k, _)| *k == TokenKind::StrLit).unwrap();
        assert_eq!(lit.1, r##"r#"has "quotes" and \ slashes"#"##);
        // A comment-looking sequence inside a raw string stays in the string.
        let toks = sig(r#"r"// not a comment""#);
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].0, TokenKind::StrLit);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        assert_eq!(sig(r#"b"bytes""#)[0].0, TokenKind::StrLit);
        assert_eq!(sig(r##"br#"raw bytes"#"##)[0].0, TokenKind::StrLit);
        assert_eq!(sig("b'x'")[0].0, TokenKind::CharLit);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = sig("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|(_, t)| t == "'a"));
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'x'");
    }

    #[test]
    fn escaped_char_literals() {
        assert_eq!(sig(r"'\n'")[0], (TokenKind::CharLit, r"'\n'".to_string()));
        assert_eq!(sig(r"'\''")[0], (TokenKind::CharLit, r"'\''".to_string()));
        assert_eq!(sig(r"'\u{1F600}'")[0].0, TokenKind::CharLit);
        assert_eq!(sig("'static")[0], (TokenKind::Lifetime, "'static".to_string()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let toks = sig("let r#fn = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn float_classification() {
        for float in ["1.0", "1.", "1e-3", "2.5E+7", "2f64", "3f32", "1_000.5"] {
            let toks = sig(float);
            assert_eq!(
                toks[0].0,
                TokenKind::NumLit { is_float: true },
                "{float} should lex as a float"
            );
        }
        for int in ["1", "0x1F", "0o77", "0b1010", "42usize", "1_000u64"] {
            let toks = sig(int);
            assert_eq!(
                toks[0].0,
                TokenKind::NumLit { is_float: false },
                "{int} should lex as an integer"
            );
        }
    }

    #[test]
    fn ranges_and_method_calls_on_integers_are_not_floats() {
        let toks = sig("0..10");
        assert_eq!(toks[0].0, TokenKind::NumLit { is_float: false });
        assert_eq!(toks[1], (TokenKind::Op, "..".to_string()));
        let toks = sig("1.max(2)");
        assert_eq!(toks[0].0, TokenKind::NumLit { is_float: false });
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "max"));
    }

    #[test]
    fn multi_char_operators_lex_greedily() {
        let texts: Vec<String> = sig("a <<= b ..= c == d -> e :: f")
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Op)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(texts, vec!["<<=", "..=", "==", "->", "::"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "/* one\ntwo */\nfn f() {}\n\"a\nb\"\nlast";
        let toks = tokenize(src);
        assert_eq!(toks[0].line, 1); // block comment starts on line 1
        let f = toks.iter().find(|t| t.text == "fn").unwrap();
        assert_eq!(f.line, 3);
        let last = toks.iter().find(|t| t.text == "last").unwrap();
        assert_eq!(last.line, 6);
    }

    #[test]
    fn unterminated_literals_close_at_eof() {
        // Must not panic or loop forever.
        assert_eq!(sig("\"never closed").len(), 1);
        assert_eq!(sig(r##"r#"never closed"##).len(), 1);
        assert!(!tokenize("/* never closed").is_empty());
    }
}
