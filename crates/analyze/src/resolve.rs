//! Scope-aware symbol and type resolution over the [`crate::ast`] tree.
//!
//! The determinism rules need to answer one question cheaply: *what is the
//! type of this receiver?* — specifically whether it is a hash-ordered
//! container. Resolution is deliberately shallow: `use` aliases, `let`
//! annotations, constructor-path initializers, `collect::<T>` turbofish,
//! fn parameters and struct fields. Anything deeper (generic instantiation,
//! trait-object erasure, cross-file field types) resolves to "unknown",
//! which the rules treat as *not* a violation — a false-negative class, by
//! design, never a false positive.

use std::collections::BTreeMap;

use crate::ast::{File, FnItem, ImplItem, ItemKind, Node, Span, StructItem};
use crate::parser::Cursor;

/// Hash-ordered std containers whose iteration order is nondeterministic
/// across processes (`RandomState` seeding) and therefore banned from
/// deterministic library code by L9.
pub const HASH_CONTAINERS: &[&str] = &["HashMap", "HashSet"];

/// Whether a raw type-text (space-separated tokens, as stored on the AST)
/// names a hash-ordered container anywhere in its spelling.
pub fn mentions_hash_container(ty: &str) -> bool {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .any(|w| HASH_CONTAINERS.contains(&w))
}

/// `use` declarations of one file, flattened: local name → full path text.
/// Handles grouped trees (`use std::collections::{HashMap, HashSet};`) and
/// `as` renames; glob imports are ignored.
#[derive(Debug, Default)]
pub struct UseMap {
    map: BTreeMap<String, String>,
}

impl UseMap {
    /// Builds the map from every `use` item in the file (top level and
    /// inline modules).
    pub fn from_file(file: &File) -> Self {
        let mut map = BTreeMap::new();
        collect_uses(&file.items, &mut map);
        UseMap { map }
    }

    /// The full imported path for a local name, when one exists.
    pub fn expand(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Whether the local name resolves (directly or via rename) to a
    /// hash-ordered container type.
    pub fn is_hash_alias(&self, name: &str) -> bool {
        if HASH_CONTAINERS.contains(&name) {
            return true;
        }
        self.expand(name).is_some_and(|p| {
            p.rsplit("::").next().map(str::trim).is_some_and(|last| {
                HASH_CONTAINERS.contains(&last)
            })
        })
    }
}

fn collect_uses(items: &[crate::ast::Item], map: &mut BTreeMap<String, String>) {
    for item in items {
        match &item.kind {
            ItemKind::Use(u) => parse_use_text(&u.text, map),
            ItemKind::Mod(m) => collect_uses(&m.items, map),
            _ => {}
        }
    }
}

/// Parses the space-separated token text of one `use` declaration into
/// (local name → full path) entries.
fn parse_use_text(text: &str, map: &mut BTreeMap<String, String>) {
    let toks: Vec<&str> = text.split_whitespace().collect();
    expand_use(&toks, "", map);
}

fn expand_use(toks: &[&str], prefix: &str, map: &mut BTreeMap<String, String>) {
    // Split the token list at the first `{` (grouped tree) if any.
    if let Some(open) = toks.iter().position(|&t| t == "{") {
        let head: String = toks[..open]
            .iter()
            .filter(|&&t| t != "::")
            .copied()
            .collect::<Vec<_>>()
            .join("::");
        let prefix = join_path(prefix, &head);
        // Find the matching close and split the inside at top-level commas.
        let mut depth = 0usize;
        let mut close = toks.len().saturating_sub(1);
        for (i, &t) in toks.iter().enumerate().skip(open) {
            match t {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        close = i;
                        break;
                    }
                }
                _ => {}
            }
        }
        let inner = &toks[open + 1..close];
        let mut start = 0;
        let mut d = 0usize;
        for (i, &t) in inner.iter().enumerate() {
            match t {
                "{" => d += 1,
                "}" => d = d.saturating_sub(1),
                "," if d == 0 => {
                    expand_use(&inner[start..i], &prefix, map);
                    start = i + 1;
                }
                _ => {}
            }
        }
        if start < inner.len() {
            expand_use(&inner[start..], &prefix, map);
        }
        return;
    }
    // Flat path, possibly with an `as` rename or trailing `;` noise.
    let mut segs: Vec<&str> = Vec::new();
    let mut rename: Option<&str> = None;
    let mut it = toks.iter().peekable();
    while let Some(&t) = it.next() {
        match t {
            "::" | ";" => {}
            "as" => {
                rename = it.next().copied();
                break;
            }
            "*" => return, // glob: nothing nameable
            _ => segs.push(t),
        }
    }
    let Some(&last) = segs.last() else { return };
    if last == "self" {
        segs.pop();
    }
    let Some(&tail) = segs.last() else { return };
    let local = rename.unwrap_or(tail);
    let full = join_path(prefix, &segs.join("::"));
    map.insert(local.to_string(), full);
}

fn join_path(prefix: &str, rest: &str) -> String {
    if prefix.is_empty() {
        rest.to_string()
    } else if rest.is_empty() {
        prefix.to_string()
    } else {
        format!("{prefix}::{rest}")
    }
}

/// Struct field types declared in one file: struct name → (field, type).
#[derive(Debug, Default)]
pub struct FieldTypes {
    map: BTreeMap<String, Vec<(String, String)>>,
}

impl FieldTypes {
    /// Collects every struct declaration in the file.
    pub fn from_file(file: &File) -> Self {
        let mut map = BTreeMap::new();
        collect_structs(&file.items, &mut map);
        FieldTypes { map }
    }

    /// The raw type text of `ty.field`, when the struct is declared in
    /// this file.
    pub fn field_type(&self, ty: &str, field: &str) -> Option<&str> {
        self.map.get(ty)?.iter().find(|(f, _)| f == field).map(|(_, t)| t.as_str())
    }

    /// Every struct in the file, for rules that scan declarations.
    pub fn structs(&self) -> impl Iterator<Item = (&String, &Vec<(String, String)>)> {
        self.map.iter()
    }
}

fn collect_structs(items: &[crate::ast::Item], map: &mut BTreeMap<String, Vec<(String, String)>>) {
    for item in items {
        match &item.kind {
            ItemKind::Struct(StructItem { name, fields, .. }) => {
                map.insert(name.clone(), fields.clone());
            }
            ItemKind::Mod(m) => collect_structs(&m.items, map),
            _ => {}
        }
    }
}

/// A local type table for one function body: parameters plus `let`
/// bindings, each valid over a token-index range.
#[derive(Debug, Default)]
pub struct TypeEnv {
    /// `(name, type text, visible-from index, scope-end index)`.
    entries: Vec<(String, String, usize, usize)>,
}

impl TypeEnv {
    /// Builds the table for `f` (in optional impl context `im`).
    pub fn for_fn(cur: &Cursor, f: &FnItem, _im: Option<&ImplItem>) -> Self {
        let mut entries = Vec::new();
        let Some(body) = &f.body else { return TypeEnv { entries } };
        // Parameters are visible across the whole body.
        for (name, ty) in split_params(&f.params) {
            entries.push((name, ty, body.span.start, body.span.end));
        }
        for node in &body.nodes {
            if let Node::Let { name, ty, init, scope_end, .. } = node {
                if name.is_empty() {
                    continue;
                }
                let ty = if !ty.is_empty() {
                    ty.clone()
                } else {
                    infer_init_type(cur, *init).unwrap_or_default()
                };
                if !ty.is_empty() {
                    entries.push((name.clone(), ty, init.start, *scope_end));
                }
            }
        }
        TypeEnv { entries }
    }

    /// The declared/inferred type of `name` visible at token index `at` —
    /// the innermost (latest) binding wins, matching shadowing.
    pub fn type_of(&self, name: &str, at: usize) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _, from, to)| n == name && *from <= at && at <= *to)
            .map(|(_, t, _, _)| t.as_str())
    }
}

/// Splits a fn parameter list's raw token text (`self , xs : & [ T ] , n :
/// usize`) into `(name, type)` pairs at top-level commas. `self` receivers
/// carry an empty type.
pub fn split_params(params: &str) -> Vec<(String, String)> {
    let toks: Vec<&str> = params.split_whitespace().collect();
    let mut out = Vec::new();
    let mut start = 0;
    let mut depth = 0isize;
    let mut i = 0;
    while i <= toks.len() {
        let at_end = i == toks.len();
        let t = if at_end { "," } else { toks[i] };
        match t {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth <= 0 => {
                let seg = &toks[start..i];
                if let Some(pair) = param_pair(seg) {
                    out.push(pair);
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    out
}

fn param_pair(seg: &[&str]) -> Option<(String, String)> {
    if seg.is_empty() {
        return None;
    }
    // Strip leading `mut` (pattern) — `&`/`&mut self` handled below.
    let mut j = 0;
    while j < seg.len() && matches!(seg[j], "mut" | "&") {
        j += 1;
    }
    if j < seg.len() && seg[j] == "self" {
        return Some(("self".to_string(), String::new()));
    }
    let name = *seg.first()?;
    if name == "mut" {
        return param_pair(&seg[1..]);
    }
    if !name.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_') {
        return None;
    }
    // Untyped single-ident segments (closure params) carry an empty type.
    let ty = match seg.iter().position(|&t| t == ":") {
        Some(colon) => seg[colon + 1..].join(" "),
        None if seg.len() == 1 => String::new(),
        None => return None,
    };
    Some((name.to_string(), ty))
}

/// Infers a head type from an initializer span: a constructor path
/// (`HashMap::new()`, `std::collections::HashSet::from([..])`) or a
/// `collect::<T>()` turbofish. Returns the raw head-type text.
pub fn infer_init_type(cur: &Cursor, init: Span) -> Option<String> {
    if init.end < init.start || init.start >= cur.n() {
        return None;
    }
    // Constructor path: the first tokens are `Seg (:: Seg)* :: fn (`.
    let mut i = init.start;
    let mut last_type_seg: Option<String> = None;
    while i < init.end {
        let t = cur.text(i);
        if t.chars().next().is_some_and(|c| c.is_uppercase()) {
            last_type_seg = Some(t.to_string());
            // `HashMap < u64 , f64 > :: new` — skip the generics.
            let after = cur.skip_generics(i + 1);
            if cur.text_at(after as isize) == "::" {
                i = after + 1;
                continue;
            }
            break;
        } else if cur.text_at(i as isize + 1) == "::" {
            i += 2; // lowercase module segment (`std ::`, `collections ::`)
            continue;
        }
        break;
    }
    if let Some(ty) = last_type_seg {
        return Some(ty);
    }
    // `collect :: < T ... >` turbofish anywhere in the initializer chain.
    for i in init.start..=init.end.min(cur.n().saturating_sub(1)) {
        if cur.text(i) == "collect"
            && cur.text_at(i as isize + 1) == "::"
            && cur.text_at(i as isize + 2) == "<"
        {
            let close = cur.skip_generics(i + 2);
            return Some(cur.span_text(i + 3, close.saturating_sub(2)));
        }
    }
    None
}

/// Parameter names of a closure's raw parameter text — the first
/// identifier of each top-level comma segment (`mut` and `&` stripped,
/// destructuring patterns contribute every identifier).
pub fn closure_param_names(params: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (name, _) in split_params(params) {
        out.push(name);
    }
    // Destructuring patterns (`|(a, b)|`) defeat split_params' name rule;
    // fall back to harvesting every identifier-looking token.
    if out.is_empty() && !params.trim().is_empty() {
        for t in params.split(|c: char| !c.is_alphanumeric() && c != '_') {
            if !t.is_empty()
                && t.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
                && !matches!(t, "mut" | "ref" | "move")
            {
                out.push(t.to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::parser::parse_file;

    #[test]
    fn use_map_handles_groups_and_renames() {
        let toks = tokenize(
            "use std::collections::{HashMap, BTreeMap as Sorted};\nuse std::collections::HashSet as Fast;\n",
        );
        let (file, _) = parse_file(&toks);
        let uses = UseMap::from_file(&file);
        assert_eq!(uses.expand("HashMap"), Some("std::collections::HashMap"));
        assert_eq!(uses.expand("Sorted"), Some("std::collections::BTreeMap"));
        assert!(uses.is_hash_alias("HashMap"));
        assert!(uses.is_hash_alias("Fast"));
        assert!(!uses.is_hash_alias("Sorted"));
    }

    #[test]
    fn type_env_resolves_params_lets_and_turbofish() {
        let src = "fn f(m: &HashMap<u64, f64>, n: usize) {\n\
                   let s: HashSet<u32> = HashSet::new();\n\
                   let t = BTreeMap::new();\n\
                   let c = xs.iter().collect::<HashMap<u64, f64>>();\n\
                   }\n";
        let toks = tokenize(src);
        let (file, cur) = parse_file(&toks);
        let (_, f) = file.all_fns()[0];
        let env = TypeEnv::for_fn(&cur, f, None);
        let at = f.body.as_ref().map(|b| b.span.end - 1).unwrap_or(0);
        assert!(mentions_hash_container(env.type_of("m", at).unwrap()));
        assert!(mentions_hash_container(env.type_of("s", at).unwrap()));
        assert!(!mentions_hash_container(env.type_of("t", at).unwrap()));
        assert!(mentions_hash_container(env.type_of("c", at).unwrap()));
        assert_eq!(env.type_of("n", at), Some("usize"));
        assert_eq!(env.type_of("nope", at), None);
    }

    #[test]
    fn inner_scope_bindings_expire() {
        let src = "fn f() { { let m = HashMap::new(); m.len(); } after(); }";
        let toks = tokenize(src);
        let (file, cur) = parse_file(&toks);
        let (_, f) = file.all_fns()[0];
        let env = TypeEnv::for_fn(&cur, f, None);
        let at = f.body.as_ref().map(|b| b.span.end).unwrap_or(0);
        assert_eq!(env.type_of("m", at), None, "m's scope ended with its block");
    }

    #[test]
    fn closure_params_cover_patterns() {
        assert_eq!(closure_param_names("w"), vec!["w"]);
        assert_eq!(closure_param_names("i , w : & Window"), vec!["i", "w"]);
        assert_eq!(closure_param_names("( a , b )"), vec!["a", "b"]);
        assert!(closure_param_names("").is_empty());
    }
}
