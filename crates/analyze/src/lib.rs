//! `lgo-analyze` — offline static analysis for the lgo workspace.
//!
//! The BGMS defense stack sits in a safety-critical loop (CGM → anomaly
//! detector → BiLSTM forecaster → dosing). A silent NaN in a risk profile,
//! a `partial_cmp` that misorders NaN scores, a stray `unwrap()` in a
//! per-patient stage, or a `HashMap` iteration that reorders exported risk
//! profiles between runs corrupts exactly the quantities the
//! selective-training defense depends on. This crate enforces the repo
//! conventions that guard against that, as a build gate
//! (`scripts/check.sh`) with no external dependencies so it runs in the
//! same offline environment as the rest of the workspace.
//!
//! * [`lexer`] — hand-rolled Rust tokenizer;
//! * [`parser`] — dependency-free recursive-descent parser producing the
//!   lightweight [`ast`] (item tree + flat per-body node lists);
//! * [`resolve`] — scope-aware symbol table: `use` aliases, struct field
//!   types, per-function local type environments;
//! * [`callgraph`] — workspace call graph and the interprocedural rules
//!   (L3 twins, L11 panic reachability, L12 lock order);
//! * [`rules`] — the lint catalog (L1–L13) and the two-pass engine;
//! * [`allow`] — `// lint: allow(<rule>): <why>` suppression directives;
//! * [`report`] — findings plus text/JSON rendering;
//! * [`walk`] — workspace file discovery.
//!
//! ```
//! use lgo_analyze::{analyze_source, FileScope};
//!
//! let src = "fn f(xs: &[f64]) -> f64 { *xs.first().unwrap() }\n";
//! let findings = analyze_source("demo.rs", src, FileScope::all());
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "L1");
//! ```

pub mod allow;
pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod report;
pub mod resolve;
pub mod rules;
pub mod walk;

pub use report::{render_json, Finding};
pub use rules::{analyze_files, analyze_source, FileInput, FileScope};

use std::path::Path;

/// Scans the workspace rooted at `root`, applying path-derived rule scopes.
/// All files are analyzed as one batch so the interprocedural rules
/// (L3/L11/L12) see the whole call graph.
///
/// # Errors
///
/// Returns any I/O error from walking or reading source files.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut inputs = Vec::new();
    for path in walk::workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = FileScope::for_path(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        inputs.push(FileInput { path: rel, src, scope });
    }
    Ok(analyze_files(&inputs))
}
