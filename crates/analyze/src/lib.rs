//! `lgo-analyze` — offline static analysis for the lgo workspace.
//!
//! The BGMS defense stack sits in a safety-critical loop (CGM → anomaly
//! detector → BiLSTM forecaster → dosing). A silent NaN in a risk profile,
//! a `partial_cmp` that misorders NaN scores, or a stray `unwrap()` in a
//! per-patient stage corrupts exactly the quantities the selective-training
//! defense depends on. This crate enforces the repo conventions that guard
//! against that, as a build gate (`scripts/check.sh`) with no external
//! dependencies so it runs in the same offline environment as the rest of
//! the workspace.
//!
//! * [`lexer`] — hand-rolled Rust tokenizer;
//! * [`rules`] — the lint catalog (L1–L5) and the per-file engine;
//! * [`allow`] — `// lint: allow(<rule>): <why>` suppression directives;
//! * [`report`] — findings plus text/JSON rendering;
//! * [`walk`] — workspace file discovery.
//!
//! ```
//! use lgo_analyze::{analyze_source, FileScope};
//!
//! let src = "fn f(xs: &[f64]) -> f64 { *xs.first().unwrap() }\n";
//! let findings = analyze_source("demo.rs", src, FileScope::all());
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "L1");
//! ```

pub mod allow;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::{render_json, Finding};
pub use rules::{analyze_source, FileScope};

use std::path::Path;

/// Scans the workspace rooted at `root`, applying path-derived rule scopes.
///
/// # Errors
///
/// Returns any I/O error from walking or reading source files.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for path in walk::workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = FileScope::for_path(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        findings.extend(analyze_source(&rel, &src, scope));
    }
    Ok(findings)
}
