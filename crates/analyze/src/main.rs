//! CLI for the lgo workspace lint engine.
//!
//! ```text
//! lgo-analyze --workspace [--root DIR] [--json]   # scan the whole repo
//! lgo-analyze FILE...     [--json]                # scan files, all rules on
//! lgo-analyze --list-rules                        # print the lint catalog
//! ```
//!
//! Exits 0 when clean, 1 on findings, 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use lgo_analyze::{analyze_files, analyze_workspace, render_json, FileInput, FileScope, Finding};

const RULE_CATALOG: &str = "\
L1  no .unwrap()/.expect()/panic!/unreachable!/todo!/unimplemented! in non-test
    library code of the defense crates (core, detect, forecast, nn, tensor,
    series, cluster); allow with `// lint: allow(L1): <why>`
L2  no partial_cmp / raw </> comparator closures on floats; use f64::total_cmp
L3  a pub fn that can panic must return Result or have a try_ twin
L4  no ==/!= against float literals; compare with an epsilon
L5  every pub item in lgo-core carries a doc comment
L6  no bare .unwrap()/.expect() on lock()/read()/write()/join() results
    outside lgo-runtime internals; recover from poisoning or allow with
    `/ lint: allow(L6): <why>`
L7  no bare println!/eprintln!/print!/eprint! in non-test library code (any
    crate except lgo-bench and lgo-analyze); record through lgo-trace or
    allow with `// lint: allow(L7): <why>`
L8  no bare thread::sleep in non-test library code (any crate except
    lgo-runtime and lgo-serve); sleep-based waits hide stalls and break
    determinism — wait on a Condvar / deadline or allow with
    `// lint: allow(L8): <why>`
L9  determinism dataflow: no HashMap/HashSet declarations or storage-order
    iteration in library code (use BTreeMap/BTreeSet, an order-insensitive
    reduction, or an explicit sort); no Instant::now/SystemTime outside the
    runtime/trace/serve timing seams; no RNG not derived from
    lgo_runtime::split_seed (entropy sources and constant seeds)
L10 closures passed to par_map/par_chunks/par_index_pairs/scope (and their
    try_ twins) must not mutate captured shared state (Mutex/RefCell/atomic
    writes); index-addressed slots and closure-owned locals are allowed
L11 a pub defense-crate fn must not transitively reach a panic through the
    workspace call graph without a Result return or a try_ twin somewhere
    on the path
L12 lock-order consistency in lgo-runtime/lgo-serve: no pair of locks
    acquired in both orders anywhere in the (interprocedural) hold graph
A0  lint directives must be well-formed and carry a justification
A1  lint directives must suppress at least one finding";

struct Args {
    workspace: bool,
    json: bool,
    list_rules: bool,
    root: PathBuf,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        json: false,
        list_rules: false,
        root: PathBuf::from("."),
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => args.workspace = true,
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root requires a directory".to_string())?,
                );
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.list_rules && !args.workspace && args.files.is_empty() {
        return Err("nothing to do: pass --workspace or file paths".to_string());
    }
    Ok(args)
}

fn run(args: &Args) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    if args.workspace {
        findings.extend(analyze_workspace(&args.root)?);
    }
    // Explicit files are scanned with every rule enabled: used for fixture
    // tests and for checking a file before it lands in a scoped crate. They
    // go through as one batch so L3/L11/L12 see calls across the set.
    let mut inputs = Vec::new();
    for path in &args.files {
        inputs.push(FileInput {
            path: path.to_string_lossy().into_owned(),
            src: std::fs::read_to_string(path)?,
            scope: FileScope::all(),
        });
    }
    findings.extend(analyze_files(&inputs));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("lgo-analyze: {msg}");
            }
            eprintln!(
                "usage: lgo-analyze --workspace [--root DIR] [--json] | FILE... | --list-rules"
            );
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        println!("{RULE_CATALOG}");
        return ExitCode::SUCCESS;
    }
    let findings = match run(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lgo-analyze: {e}");
            return ExitCode::from(2);
        }
    };
    if args.json {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            println!("{}", f.render());
        }
        if findings.is_empty() {
            println!("lgo-analyze: workspace clean");
        } else {
            println!("lgo-analyze: {} finding(s)", findings.len());
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
