//! Workspace call graph and the interprocedural rules.
//!
//! Pass 1 ([`collect_facts`]) reduces every function in every scanned file
//! to a [`FnFact`]: its identity (name, impl type, trait context,
//! visibility), its failure surface (unexcused panic-family sites, Result
//! return, `try_` twin), its outgoing calls with whatever receiver-type
//! evidence the local [`crate::resolve::TypeEnv`] offers, and its lock
//! acquisitions with hold spans. Pass 2 stitches the facts together:
//!
//! * **L3** — a public API function (now *including* trait-impl methods of
//!   workspace-defined traits) that contains an unexcused panic site must
//!   return `Result` or have a `try_` twin.
//! * **L11** — a `pub` defense-API function that reaches a panic
//!   *transitively* through the call graph, where no function on the path
//!   absorbs the failure (returns `Result` or offers a `try_` twin), is
//!   flagged with the full witness chain.
//! * **L12** — lock-order consistency: any pair of lock keys acquired in
//!   both orders anywhere in the workspace (directly nested or through
//!   calls made while holding a guard) is a deadlock seed.
//!
//! Call resolution is name-based and deliberately conservative: a call
//! edge is added only when the callee is unambiguous (receiver type known,
//! `Type::fn` qualified, or a unique workspace-wide name). Ambiguity drops
//! the edge — a false-negative class, never a false positive.

use std::collections::{BTreeMap, BTreeSet};

use crate::allow::AllowDirective;
use crate::ast::{File, ItemKind, Node, Span, Vis};
use crate::parser::{panic_site, Cursor};
use crate::report::Finding;

/// Everything pass 2 needs to know about one function.
#[derive(Debug)]
pub struct FnFact {
    /// Index of the containing file in the `analyze_files` input.
    pub file: usize,
    /// Workspace-relative path (for findings).
    pub path: String,
    /// Crate name (`core`, `runtime`, ...), empty outside `crates/`.
    pub krate: String,
    pub name: String,
    /// Implementing type for inherent/trait-impl methods.
    pub self_ty: Option<String>,
    /// Trait name for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    pub vis: Vis,
    pub line: usize,
    pub returns_result: bool,
    pub has_body: bool,
    /// Body lies inside `#[cfg(test)]` / `#[test]` masked code.
    pub is_test: bool,
    /// First unexcused panic-family site in the body: `(line, display)`.
    pub panic: Option<(usize, &'static str)>,
    pub calls: Vec<CallSite>,
    pub locks: Vec<LockAcq>,
}

/// One outgoing call site.
#[derive(Debug)]
pub struct CallSite {
    pub target: CallTarget,
    pub line: usize,
    /// Significant-token index (for lock-hold containment).
    pub idx: usize,
}

/// What the call site syntactically names.
#[derive(Debug)]
pub enum CallTarget {
    /// `recv.name(...)`; `recv_ty` is the head type of the receiver when
    /// the local type table knows it.
    Method {
        recv_base: String,
        recv_ty: Option<String>,
        name: String,
    },
    /// `a::b::name(...)` (single-segment for plain calls).
    Path { segs: Vec<String> },
}

/// One lock acquisition.
#[derive(Debug)]
pub struct LockAcq {
    /// Normalized lock key: receiver chain with `self.` stripped and
    /// indices collapsed (`shared.state`, `queues[_]`); a `lock_x()`
    /// helper method contributes `recv.x`.
    pub key: String,
    pub line: usize,
    /// Significant-token index of the acquiring call.
    pub idx: usize,
    /// For guards bound by `let`: token index of the enclosing block's
    /// `}` — the end of the hold span. `None` for temporary guards.
    pub hold_end: Option<usize>,
}

/// Result adapters that keep the returned guard alive when chained onto a
/// lock call inside a `let` initializer.
const GUARD_PRESERVING: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Common std method names never resolved to workspace functions by bare
/// (receiver-type-unknown) lookup — they would alias ubiquitous container
/// and iterator calls onto any workspace type that happens to share the
/// name.
const STD_METHODS: &[&str] = &[
    "new", "default", "clone", "len", "is_empty", "get", "get_mut", "insert", "remove", "push",
    "pop", "iter", "iter_mut", "into_iter", "next", "contains", "contains_key", "extend",
    "clear", "fmt", "eq", "ne", "cmp", "partial_cmp", "total_cmp", "hash", "from", "into",
    "to_string", "to_owned", "to_vec", "as_ref", "as_mut", "as_str", "as_slice", "map",
    "and_then", "or_else", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok", "err",
    "expect", "unwrap", "take", "replace", "split", "join", "min", "max", "abs", "sqrt", "exp",
    "ln", "powi", "powf", "floor", "ceil", "round", "sort", "sort_by", "sort_unstable", "rev",
    "zip", "enumerate", "filter", "filter_map", "fold", "sum", "count", "collect", "drain",
    "retain", "last", "first", "send", "recv", "spawn", "lock", "read", "write", "store",
    "load", "swap", "wait", "notify_all", "notify_one", "is_some", "is_none", "is_ok",
    "is_err", "finish", "flush", "drop", "resize", "reserve", "chunks", "windows", "to_bits",
];

/// Free-fn names never resolved by bare single-segment lookup.
const STD_FNS: &[&str] = &[
    "drop", "format", "min", "max", "swap", "replace", "take", "size_of", "from_fn",
];

/// Extracts the facts for every function in one parsed file.
#[allow(clippy::too_many_arguments)]
pub fn collect_facts(
    file_idx: usize,
    path: &str,
    file: &File,
    cur: &Cursor,
    test_mask: &[bool],
    allows: &[AllowDirective],
    out: &mut Vec<FnFact>,
) {
    let krate = crate_of(path);
    for (im, f) in file.all_fns() {
        let env = crate::resolve::TypeEnv::for_fn(cur, f, im);
        let is_test = f
            .body
            .as_ref()
            .map(|b| *test_mask.get(b.span.start).unwrap_or(&false))
            .unwrap_or(false);
        let returns_result = f
            .ret
            .split(|c: char| !c.is_alphanumeric() && c != '_')
            .any(|w| w.ends_with("Result") && !w.is_empty());
        let mut fact = FnFact {
            file: file_idx,
            path: path.to_string(),
            krate: krate.clone(),
            name: f.name.clone(),
            self_ty: im.map(|i| i.self_ty.clone()),
            trait_name: im.and_then(|i| i.trait_name.clone()),
            vis: f.vis,
            line: f.line,
            returns_result,
            has_body: f.body.is_some(),
            is_test,
            panic: None,
            calls: Vec::new(),
            locks: Vec::new(),
        };
        if let Some(body) = &f.body {
            // Direct panic sites (unexcused, outside test-masked spans).
            for i in body.span.start..=body.span.end.min(cur.n().saturating_sub(1)) {
                if *test_mask.get(i).unwrap_or(&false) {
                    continue;
                }
                if let Some(site) = panic_site(cur, i) {
                    let line = cur.line(i);
                    let excused = allows.iter().any(|a| a.covers("L1", line));
                    if !excused {
                        fact.panic = Some((line, site));
                        break;
                    }
                }
            }
            collect_calls_and_locks(cur, &body.nodes, &env, &mut fact);
        }
        out.push(fact);
    }
}

/// Crate name from a workspace-relative path.
pub fn crate_of(path: &str) -> String {
    path.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

fn collect_calls_and_locks(
    _cur: &Cursor,
    nodes: &[Node],
    env: &crate::resolve::TypeEnv,
    fact: &mut FnFact,
) {
    // Lock calls that end up bound to a `let` guard; excluded from the
    // temporary-acquisition list below.
    let mut bound_lock_idxs: BTreeSet<usize> = BTreeSet::new();

    for node in nodes {
        if let Node::Let { init, scope_end, .. } = node {
            if let Some((lock_idx, key, line)) = bound_guard(nodes, *init) {
                bound_lock_idxs.insert(lock_idx);
                fact.locks.push(LockAcq {
                    key,
                    line,
                    idx: lock_idx,
                    hold_end: Some(*scope_end),
                });
            }
        }
    }
    for node in nodes {
        match node {
            Node::MethodCall { recv, recv_base, name, args, span, line } => {
                if let Some(key) = lock_key(recv, name, args) {
                    if !bound_lock_idxs.contains(&span.start) {
                        fact.locks.push(LockAcq {
                            key,
                            line: *line,
                            idx: span.start,
                            hold_end: None,
                        });
                    }
                    continue;
                }
                let recv_ty = if recv == recv_base && !recv_base.is_empty() {
                    env.type_of(recv_base, span.start).map(head_type)
                } else {
                    None
                };
                fact.calls.push(CallSite {
                    target: CallTarget::Method {
                        recv_base: recv_base.clone(),
                        recv_ty,
                        name: name.clone(),
                    },
                    line: *line,
                    idx: span.start,
                });
            }
            Node::Call { path, span, line, .. } => {
                fact.calls.push(CallSite {
                    target: CallTarget::Path { segs: path.clone() },
                    line: *line,
                    idx: span.start,
                });
            }
            _ => {}
        }
    }
}

/// The head type identifier of a raw type text (`&mut HashMap<u64, f64>` →
/// `HashMap`).
fn head_type(ty: &str) -> String {
    ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .find(|w| !w.is_empty() && !matches!(*w, "mut" | "dyn" | "ref"))
        .unwrap_or("")
        .to_string()
}

/// If the method call `recv.name(args)` acquires a lock, its normalized
/// key. `lock_x()` helper methods contribute `recv.x`.
fn lock_key(recv: &str, name: &str, args: &Span) -> Option<String> {
    let zero_arg = args.end <= args.start + 1;
    let base = strip_self(recv);
    if name == "lock" && zero_arg {
        return (!base.is_empty()).then(|| base.to_string());
    }
    if matches!(name, "read" | "write") && zero_arg && !base.is_empty() {
        // Only count `read`/`write` on plain field/ident receivers — an
        // `io::Read`/`Write` receiver is typically a call result or file.
        if base.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') {
            return Some(format!("{base}:{name}"));
        }
        return None;
    }
    if let Some(rest) = name.strip_prefix("lock_") {
        if !rest.is_empty() && zero_arg {
            return Some(if base.is_empty() {
                rest.to_string()
            } else {
                format!("{base}.{rest}")
            });
        }
    }
    None
}

/// `self.shared.state` → `shared.state`; leading `&` dropped.
fn strip_self(recv: &str) -> &str {
    let r = recv.trim_start_matches('&');
    r.strip_prefix("self.").unwrap_or(r)
}

/// Decides whether the `let` initializer `init` binds a lock guard:
/// its chain must terminate in a lock acquisition, with only
/// guard-preserving adapters (`unwrap`, `expect`, `unwrap_or_else`)
/// stacked on top. Returns `(lock call token idx, key, line)`.
fn bound_guard(nodes: &[Node], init: Span) -> Option<(usize, String, usize)> {
    if init.end < init.start {
        return None;
    }
    // All method calls inside the initializer.
    let mut lock: Option<(usize, String, usize, Span)> = None;
    for node in nodes {
        if let Node::MethodCall { recv, name, args, span, line, .. } = node {
            if !init.contains(*span) {
                continue;
            }
            if let Some(key) = lock_key(recv, name, args) {
                // Keep the outermost (widest) lock call in the chain.
                if lock.as_ref().is_none_or(|(_, _, _, s)| span.start <= s.start) {
                    lock = Some((span.start, key, *line, *span));
                }
            }
        }
    }
    let (idx, key, line, lock_span) = lock?;
    // Every call wrapped around the lock call must preserve the guard.
    for node in nodes {
        if let Node::MethodCall { name, span, .. } = node {
            if init.contains(*span) && span.contains(lock_span) && *span != lock_span {
                // The wrapper's *own* call (not a chain prefix): it starts
                // at or before the lock and extends past it.
                if !GUARD_PRESERVING.contains(&name.as_str()) {
                    return None;
                }
            }
        }
    }
    // `lgo_runtime`-style chains where the lock is itself the whole init
    // (no wrapper) are guards too; both cases land here.
    Some((idx, key, line))
}

/// Name-resolution index over the collected facts.
pub struct CallGraph<'a> {
    pub facts: &'a [FnFact],
    by_name: BTreeMap<&'a str, Vec<usize>>,
    by_qual: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// `(file index, fn name)` pairs, for `try_` twin lookup.
    names_in_file: BTreeSet<(usize, &'a str)>,
}

impl<'a> CallGraph<'a> {
    pub fn build(facts: &'a [FnFact]) -> Self {
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut names_in_file = BTreeSet::new();
        for (i, f) in facts.iter().enumerate() {
            names_in_file.insert((f.file, f.name.as_str()));
            if f.is_test {
                continue; // test fns are never call targets
            }
            by_name.entry(f.name.as_str()).or_default().push(i);
            if let Some(ty) = &f.self_ty {
                by_qual.entry((ty.as_str(), f.name.as_str())).or_default().push(i);
            }
        }
        CallGraph { facts, by_name, by_qual, names_in_file }
    }

    /// Whether `try_<name>` exists in the same file as fact `i`.
    pub fn has_twin(&self, i: usize) -> bool {
        let f = &self.facts[i];
        let twin = format!("try_{}", f.name);
        self.names_in_file
            .iter()
            .any(|&(file, name)| file == f.file && name == twin)
    }

    /// Resolves one call site from `caller` to a unique fact index, or
    /// `None` when ambiguous / external / blocklisted.
    pub fn resolve(&self, caller: usize, site: &CallSite) -> Option<usize> {
        let caller_fact = &self.facts[caller];
        match &site.target {
            CallTarget::Method { recv_base, recv_ty, name } => {
                if recv_base == "self" {
                    if let Some(ty) = &caller_fact.self_ty {
                        if let Some(v) = self.by_qual.get(&(ty.as_str(), name.as_str())) {
                            return unique(v);
                        }
                    }
                }
                if let Some(ty) = recv_ty {
                    if let Some(v) = self.by_qual.get(&(ty.as_str(), name.as_str())) {
                        return unique(v);
                    }
                }
                if STD_METHODS.contains(&name.as_str()) {
                    return None;
                }
                // Unknown receiver: accept only a workspace-unique method.
                let v = self.by_name.get(name.as_str())?;
                let methods: Vec<usize> = v
                    .iter()
                    .copied()
                    .filter(|&i| self.facts[i].self_ty.is_some())
                    .collect();
                unique(&methods)
            }
            CallTarget::Path { segs } => {
                let name = segs.last()?.as_str();
                if name.chars().next().is_some_and(|c| c.is_uppercase()) {
                    return None; // tuple-struct / enum-variant constructor
                }
                if segs.len() >= 2 {
                    let prev = segs[segs.len() - 2].as_str();
                    if prev == "Self" {
                        let ty = caller_fact.self_ty.as_deref()?;
                        return unique(self.by_qual.get(&(ty, name))?);
                    }
                    if prev.chars().next().is_some_and(|c| c.is_uppercase()) {
                        return unique(self.by_qual.get(&(prev, name))?);
                    }
                    if let Some(krate) = prev.strip_prefix("lgo_") {
                        let v = self.by_name.get(name)?;
                        let in_crate: Vec<usize> = v
                            .iter()
                            .copied()
                            .filter(|&i| self.facts[i].krate == krate)
                            .collect();
                        return unique(&in_crate);
                    }
                    if matches!(prev, "crate" | "super") || segs.len() > 2 {
                        let v = self.by_name.get(name)?;
                        let in_crate: Vec<usize> = v
                            .iter()
                            .copied()
                            .filter(|&i| self.facts[i].krate == caller_fact.krate)
                            .collect();
                        return unique(&in_crate);
                    }
                }
                if STD_FNS.contains(&name) {
                    return None;
                }
                let v = self.by_name.get(name)?;
                // Free functions only; prefer same file, then same crate,
                // then a workspace-unique name.
                let frees: Vec<usize> = v
                    .iter()
                    .copied()
                    .filter(|&i| self.facts[i].self_ty.is_none())
                    .collect();
                let same_file: Vec<usize> = frees
                    .iter()
                    .copied()
                    .filter(|&i| self.facts[i].file == caller_fact.file)
                    .collect();
                if let Some(i) = unique(&same_file) {
                    return Some(i);
                }
                let same_crate: Vec<usize> = frees
                    .iter()
                    .copied()
                    .filter(|&i| self.facts[i].krate == caller_fact.krate)
                    .collect();
                if let Some(i) = unique(&same_crate) {
                    return Some(i);
                }
                unique(&frees)
            }
        }
    }
}

fn unique(v: &[usize]) -> Option<usize> {
    (v.len() == 1).then(|| v[0])
}

/// L3: a public API fn with an unexcused direct panic site must return
/// `Result` or have a `try_` twin. Covers free fns, inherent `pub fn`s,
/// and — new — trait-impl methods of workspace-defined `pub` traits
/// (std-trait impls like `Display` cannot grow twins and are skipped:
/// a documented false-negative class).
pub fn rule_l3(
    graph: &CallGraph,
    l3_files: &BTreeSet<usize>,
    workspace_traits: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    for (i, f) in graph.facts.iter().enumerate() {
        if !l3_files.contains(&f.file) || f.is_test || !f.has_body {
            continue;
        }
        let Some((_, site)) = f.panic else { continue };
        let public = match &f.trait_name {
            None => f.vis == Vis::Pub,
            Some(t) => workspace_traits.contains(t),
        };
        if !public || f.returns_result || f.name.starts_with("try_") || graph.has_twin(i) {
            continue;
        }
        let ctx = match (&f.trait_name, &f.self_ty) {
            (Some(t), Some(ty)) => format!(" (in `impl {t} for {ty}`)"),
            _ => String::new(),
        };
        out.push(Finding {
            file: f.path.clone(),
            line: f.line,
            rule: "L3",
            message: format!(
                "pub fn `{}`{ctx} can panic (contains `{site}`) but neither returns Result \
                 nor has a `try_{}` twin",
                f.name, f.name
            ),
        });
    }
}

/// L11: a `pub` defense-API fn whose *transitive* callees reach a panic,
/// with no absorption point on the path. Direct sites are L1/L3's job, so
/// only clean-looking functions are reported here — the whole value is
/// the witness chain.
pub fn rule_l11(graph: &CallGraph, l11_files: &BTreeSet<usize>, out: &mut Vec<Finding>) {
    let n = graph.facts.len();
    // chain[i]: the path of (fn display name, file:line) hops from fact i
    // down to a panic site, once known.
    let mut chain: Vec<Option<Vec<String>>> = vec![None; n];
    for (i, f) in graph.facts.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if let Some((line, site)) = f.panic {
            chain[i] = Some(vec![format!("`{site}` at {}:{line}", f.path)]);
        }
    }
    // Fixpoint: propagate panickiness up call edges, skipping absorbed
    // callees. Monotone (None -> Some only), so it terminates.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            if chain[i].is_some() || graph.facts[i].is_test {
                continue;
            }
            let mut best: Option<Vec<String>> = None;
            for site in &graph.facts[i].calls {
                let Some(g) = graph.resolve(i, site) else { continue };
                if g == i {
                    continue;
                }
                let gf = &graph.facts[g];
                // Absorption: the callee's failure is part of its
                // documented fallible contract.
                if gf.returns_result || gf.name.starts_with("try_") || graph.has_twin(g) {
                    continue;
                }
                if let Some(rest) = &chain[g] {
                    let mut c = vec![format!(
                        "`{}` ({}:{})",
                        display_name(gf),
                        graph.facts[i].path,
                        site.line
                    )];
                    c.extend(rest.iter().cloned());
                    // Prefer the shortest chain for a stable, readable witness.
                    if best.as_ref().is_none_or(|b| c.len() < b.len()) {
                        best = Some(c);
                    }
                }
            }
            if best.is_some() {
                chain[i] = best;
                changed = true;
            }
        }
    }
    for (i, f) in graph.facts.iter().enumerate() {
        if !l11_files.contains(&f.file)
            || f.is_test
            || f.vis != Vis::Pub
            || f.trait_name.is_some()
            || f.returns_result
            || f.name.starts_with("try_")
            || f.panic.is_some()
            || graph.has_twin(i)
        {
            continue;
        }
        if let Some(c) = &chain[i] {
            out.push(Finding {
                file: f.path.clone(),
                line: f.line,
                rule: "L11",
                message: format!(
                    "pub fn `{}` transitively reaches a panic via {} and has no `try_{}` \
                     twin; absorb the failure or expose a fallible variant",
                    display_name(f),
                    c.join(" -> "),
                    f.name
                ),
            });
        }
    }
}

fn display_name(f: &FnFact) -> String {
    match &f.self_ty {
        Some(ty) => format!("{ty}::{}", f.name),
        None => f.name.clone(),
    }
}

/// L12: lock-order consistency. Collects every ordered pair of lock keys
/// — `b` acquired (directly, or transitively through a call) while `a`'s
/// guard is held — and flags any unordered pair seen in both orders.
pub fn rule_l12(graph: &CallGraph, l12_files: &BTreeSet<usize>, out: &mut Vec<Finding>) {
    let n = graph.facts.len();
    // Effective locksets: keys a fn may acquire, transitively.
    let mut locksets: Vec<BTreeSet<String>> = graph
        .facts
        .iter()
        .map(|f| f.locks.iter().map(|l| l.key.clone()).collect())
        .collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for i in 0..n {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for site in &graph.facts[i].calls {
                if let Some(g) = graph.resolve(i, site) {
                    if g != i {
                        add.extend(locksets[g].iter().cloned());
                    }
                }
            }
            for k in add {
                if locksets[i].insert(k) {
                    changed = true;
                }
            }
        }
    }
    // Ordered pairs with their first witness: (held key, then-acquired key)
    // -> (file idx, path, line).
    let mut pairs: BTreeMap<(String, String), (usize, String, usize)> = BTreeMap::new();
    for (i, f) in graph.facts.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for a in &f.locks {
            let Some(hold_end) = a.hold_end else { continue };
            for b in &f.locks {
                if b.idx > a.idx && b.idx <= hold_end && b.key != a.key {
                    pairs
                        .entry((a.key.clone(), b.key.clone()))
                        .or_insert((f.file, f.path.clone(), b.line));
                }
            }
            for site in &f.calls {
                if site.idx <= a.idx || site.idx > hold_end {
                    continue;
                }
                let Some(g) = graph.resolve(i, site) else { continue };
                for k in &locksets[g] {
                    if k != &a.key {
                        pairs
                            .entry((a.key.clone(), k.clone()))
                            .or_insert((f.file, f.path.clone(), site.line));
                    }
                }
            }
        }
    }
    // Flag unordered pairs seen in both orders, once each, attributed to
    // the lexically later witness.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for ((a, b), w_ab) in &pairs {
        let Some(w_ba) = pairs.get(&(b.clone(), a.clone())) else {
            continue;
        };
        let key = if a < b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
        if !seen.insert(key) {
            continue;
        }
        // Attribute to the later witness; mention the earlier one.
        let (here, there, first, second) =
            if (&w_ab.1, w_ab.2) >= (&w_ba.1, w_ba.2) {
                (w_ab, w_ba, a, b)
            } else {
                (w_ba, w_ab, b, a)
            };
        if !l12_files.contains(&here.0) {
            continue;
        }
        out.push(Finding {
            file: here.1.clone(),
            line: here.2,
            rule: "L12",
            message: format!(
                "locks `{first}` and `{second}` are acquired in both orders (`{second}` \
                 while holding `{first}` here; the reverse at {}:{}); pick one global \
                 order to rule out deadlock",
                there.1, there.2
            ),
        });
    }
}

/// Names of `pub trait`s defined in one parsed file (for L3's trait-impl
/// extension: only workspace traits can grow `try_` twins).
pub fn pub_traits(file: &File, out: &mut BTreeSet<String>) {
    collect_traits(&file.items, out);
}

fn collect_traits(items: &[crate::ast::Item], out: &mut BTreeSet<String>) {
    for item in items {
        match &item.kind {
            ItemKind::Trait(t) if t.vis == Vis::Pub => {
                out.insert(t.name.clone());
            }
            ItemKind::Mod(m) => collect_traits(&m.items, out),
            _ => {}
        }
    }
}
