//! Finding type and the text / JSON renderers.

/// A single lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule ID: `L1`..`L6` for lint rules, `A0`/`A1` for allowlist hygiene.
    pub rule: &'static str,
    /// Human-readable description with the offending construct named.
    pub message: String,
}

impl Finding {
    /// `file:line: RULE: message` — the grep-able diagnostic format.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Renders findings as a JSON document for machine consumption
/// (`lgo-analyze --json`). Hand-rolled because the workspace builds offline
/// without serde.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        ));
    }
    if !findings.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("],\n  \"by_rule\": {");
    let mut by_rule: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in findings {
        *by_rule.entry(f.rule).or_insert(0) += 1;
    }
    for (i, (rule, count)) in by_rule.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{rule}\": {count}"));
    }
    out.push_str(&format!("}},\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_grepable() {
        let f = Finding {
            file: "crates/core/src/risk.rs".into(),
            line: 7,
            rule: "L1",
            message: "found `.unwrap()`".into(),
        };
        assert_eq!(f.render(), "crates/core/src/risk.rs:7: L1: found `.unwrap()`");
    }

    #[test]
    fn json_escapes_and_counts() {
        let fs = vec![Finding {
            file: "a\"b.rs".into(),
            line: 1,
            rule: "L4",
            message: "x == 1.0".into(),
        }];
        let j = render_json(&fs);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("\"count\": 1"));
    }

    #[test]
    fn json_empty_findings() {
        let j = render_json(&[]);
        assert!(j.contains("\"findings\": []"));
        assert!(j.contains("\"count\": 0"));
    }
}
