//! Workspace file discovery.

use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored
/// third-party stand-ins, test fixtures with deliberate violations, and
/// test/bench trees (test code is out of scope for every rule).
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "tests", "benches", ".git"];

/// Collects every `.rs` file under `root` that the workspace scan should
/// lint, sorted for deterministic output. Returns workspace-relative paths.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    // The facade crate's `src/` plus everything under `crates/`.
    for top in ["src", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
