//! The lightweight AST produced by [`crate::parser`].
//!
//! This is not a full Rust grammar: it models exactly the shapes the lint
//! rules reason about — the *item tree* (functions, impl blocks, traits,
//! inline modules, structs with field types, `use` imports) and, inside
//! every function body, a flat, source-ordered list of [`Node`]s (lets,
//! calls, method calls, macros, closures, `for` loops). Nesting is
//! recovered by *span containment*: every node carries its range of
//! significant-token indices, so "is this lock acquired inside that
//! closure?" is `closure.body.contains(lock.span)` rather than a tree
//! walk. That keeps the parser total — any token soup it does not
//! recognise is skipped, never fatal — which matters for a linter that
//! must survive every file in the workspace, macros and all.

/// Inclusive range `[start, end]` of significant-token indices (comments
/// excluded), as produced by [`crate::parser::Cursor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    /// Whether `other` lies entirely inside this span.
    pub fn contains(&self, other: Span) -> bool {
        self.start <= other.start && other.end <= self.end
    }

    /// Whether the single token index `i` lies inside this span.
    pub fn contains_idx(&self, i: usize) -> bool {
        self.start <= i && i <= self.end
    }
}

/// Item visibility; `pub(crate)` / `pub(super)` count as [`Vis::Scoped`]
/// (not public API surface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    Pub,
    Scoped,
    Private,
}

/// One parsed source file.
#[derive(Debug, Default)]
pub struct File {
    pub items: Vec<Item>,
}

/// A top-level or module-nested item.
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub line: usize,
    pub span: Span,
}

/// The item shapes the rules distinguish.
#[derive(Debug)]
pub enum ItemKind {
    Fn(FnItem),
    Impl(ImplItem),
    Trait(TraitItem),
    Mod(ModItem),
    Struct(StructItem),
    Use(UseItem),
    /// Anything else (enums, consts, statics, type aliases, macros...).
    Other,
}

/// A function item (free, inherent, or trait-impl associated).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub vis: Vis,
    pub line: usize,
    /// Raw text of the parameter list, parentheses excluded.
    pub params: String,
    /// Raw text of the return type (after `->`), empty when `()`.
    pub ret: String,
    /// Body span (the `{`..`}` token indices) and its extracted nodes;
    /// `None` for bodyless trait-method signatures.
    pub body: Option<Body>,
}

/// A function body: its brace span plus the flat node list.
#[derive(Debug)]
pub struct Body {
    pub span: Span,
    pub nodes: Vec<Node>,
}

/// An `impl` block.
#[derive(Debug)]
pub struct ImplItem {
    /// `Some(trait_name)` for `impl Trait for Type`, `None` for inherent.
    pub trait_name: Option<String>,
    /// The implementing type's head identifier (`Foo` from `Foo<'a, T>`).
    pub self_ty: String,
    pub fns: Vec<FnItem>,
}

/// A `trait` definition: its name and method items (signatures or
/// defaulted bodies).
#[derive(Debug)]
pub struct TraitItem {
    pub name: String,
    pub vis: Vis,
    pub fns: Vec<FnItem>,
}

/// A module: `mod name { ... }` carries its items, `mod name;` is a leaf.
#[derive(Debug)]
pub struct ModItem {
    pub name: String,
    pub items: Vec<Item>,
}

/// A struct with its named fields (name, raw type text). Tuple and unit
/// structs have no fields here.
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub vis: Vis,
    pub fields: Vec<(String, String)>,
}

/// A `use` declaration, kept as raw path text (`std::collections::HashMap`
/// or a braced tree); [`crate::resolve`] expands it.
#[derive(Debug)]
pub struct UseItem {
    pub text: String,
}

/// One interesting expression-level event inside a function body. The
/// list is flat and in source order; `span` containment recovers nesting.
#[derive(Debug)]
pub enum Node {
    /// `let <name>[: ty] = <init>;` — only simple-ident patterns carry a
    /// name (tuple/struct patterns have an empty one).
    Let {
        name: String,
        /// Raw type-annotation text, empty when inferred.
        ty: String,
        /// Span of the initializer expression (empty-range when absent).
        init: Span,
        /// Significant-token index of the matching `}` of the innermost
        /// enclosing block — the end of this binding's scope.
        scope_end: usize,
        line: usize,
    },
    /// `<recv>.<name>(<args>)`. `recv` is the normalized receiver chain
    /// text (indices collapsed to `[_]`); `recv_base` its leading
    /// identifier (`self`, a local, ...), empty when the receiver starts
    /// with a literal or call.
    MethodCall {
        recv: String,
        recv_base: String,
        name: String,
        args: Span,
        span: Span,
        line: usize,
    },
    /// `a::b::name(<args>)` — plain or path-qualified call. `path` holds
    /// every segment including the final name.
    Call {
        path: Vec<String>,
        args: Span,
        span: Span,
        line: usize,
    },
    /// `name!(...)` / `name![...]` / `name!{...}`.
    Macro {
        name: String,
        args: Span,
        line: usize,
    },
    /// `|params| body` or `move |params| body`; `body` spans the block or
    /// the trailing expression.
    Closure {
        params: String,
        body: Span,
        span: Span,
        line: usize,
    },
    /// `for <pat> in <iter> { ... }`.
    For {
        pat: String,
        /// Span of the iterated expression.
        iter: Span,
        /// Normalized text of the iterated expression.
        iter_text: String,
        body: Span,
        line: usize,
    },
}

impl Node {
    /// The node's starting line (for findings).
    pub fn line(&self) -> usize {
        match self {
            Node::Let { line, .. }
            | Node::MethodCall { line, .. }
            | Node::Call { line, .. }
            | Node::Macro { line, .. }
            | Node::Closure { line, .. }
            | Node::For { line, .. } => *line,
        }
    }

    /// The node's own span (for containment queries). `Let` spans its
    /// initializer, `For` its iterated expression.
    pub fn span(&self) -> Span {
        match self {
            Node::Let { init, .. } => *init,
            Node::MethodCall { span, .. } => *span,
            Node::Call { span, .. } => *span,
            Node::Macro { args, .. } => *args,
            Node::Closure { span, .. } => *span,
            Node::For { iter, .. } => *iter,
        }
    }
}

impl File {
    /// Every function in the file — free, trait-default, and impl-associated
    /// — with its impl context: `(containing impl, fn)`. Walks inline
    /// modules recursively.
    pub fn all_fns(&self) -> Vec<(Option<&ImplItem>, &FnItem)> {
        let mut out = Vec::new();
        collect_fns(&self.items, &mut out);
        out
    }
}

fn collect_fns<'a>(items: &'a [Item], out: &mut Vec<(Option<&'a ImplItem>, &'a FnItem)>) {
    for item in items {
        match &item.kind {
            ItemKind::Fn(f) => out.push((None, f)),
            ItemKind::Impl(im) => out.extend(im.fns.iter().map(|f| (Some(im), f))),
            ItemKind::Trait(tr) => out.extend(tr.fns.iter().map(|f| (None, f))),
            ItemKind::Mod(m) => collect_fns(&m.items, out),
            _ => {}
        }
    }
}
