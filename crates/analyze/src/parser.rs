//! A dependency-free recursive-descent parser over the [`crate::lexer`]
//! token stream, producing the lightweight AST in [`crate::ast`].
//!
//! Design constraints, in order:
//!
//! 1. **Total.** The parser must survive every file in the workspace —
//!    `macro_rules!` bodies, `unsafe impl`, `dyn Fn(usize) + Sync` types,
//!    `thread_local!` blocks, nested closures. Anything unrecognised is
//!    skipped by delimiter matching, never an error.
//! 2. **Faithful where the rules look.** Item structure (visibility,
//!    names, impl/trait context, fn signatures, struct field types) and
//!    the body events the determinism rules consume (lets, calls,
//!    closures, `for` loops) are parsed precisely.
//! 3. **Lossy elsewhere.** Expression structure the rules never inspect
//!    (arithmetic, match arms, if/else shape) is not modelled; nesting is
//!    recovered from token spans.
//!
//! The known approximations (all are false-*negative* classes, never
//! false positives): a closure is recognised by its leading `|` only in
//! argument/assignment position; `let` patterns more complex than a
//! single identifier bind no name; type inference reaches only as far as
//! `let` annotations, constructor paths and struct field declarations.

use crate::ast::{
    Body, File, FnItem, ImplItem, Item, ItemKind, ModItem, Node, Span, StructItem, TraitItem,
    UseItem, Vis,
};
use crate::lexer::{Token, TokenKind};

/// A cursor over the significant (non-comment) tokens of a file. `sig[i]`
/// maps the cursor index `i` back into the full token stream, so findings
/// keep exact line numbers.
pub struct Cursor<'a> {
    pub tokens: &'a [Token],
    pub sig: Vec<usize>,
}

impl<'a> Cursor<'a> {
    pub fn new(tokens: &'a [Token]) -> Self {
        let sig = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        Self { tokens, sig }
    }

    pub fn n(&self) -> usize {
        self.sig.len()
    }

    pub fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    pub fn text(&self, i: usize) -> &str {
        &self.tok(i).text
    }

    pub fn line(&self, i: usize) -> usize {
        self.tok(i).line
    }

    /// Token text at a possibly out-of-range index (empty when outside).
    pub fn text_at(&self, i: isize) -> &str {
        if i < 0 || i as usize >= self.n() {
            ""
        } else {
            self.text(i as usize)
        }
    }

    pub fn kind(&self, i: usize) -> TokenKind {
        self.tok(i).kind
    }

    /// Index of the `}` matching the `{` at `open` (last index if
    /// unbalanced).
    pub fn match_brace(&self, open: usize) -> usize {
        self.match_delim(open, "{", "}")
    }

    /// Index of the `)` matching the `(` at `open`.
    pub fn match_paren(&self, open: usize) -> usize {
        self.match_delim(open, "(", ")")
    }

    /// Index of the `]` matching the `[` at `open`.
    pub fn match_bracket(&self, open: usize) -> usize {
        self.match_delim(open, "[", "]")
    }

    fn match_delim(&self, open: usize, l: &str, r: &str) -> usize {
        let mut depth = 0isize;
        for i in open..self.n() {
            let t = self.text(i);
            if t == l {
                depth += 1;
            } else if t == r {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.n().saturating_sub(1)
    }

    /// From the first token of an item, the index of its final token: a
    /// `;` at top nesting or the `}` matching its body brace.
    pub fn item_end(&self, start: usize) -> usize {
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut i = start;
        while i < self.n() {
            match self.text(i) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => return i,
                "{" if paren == 0 && bracket == 0 => return self.match_brace(i),
                _ => {}
            }
            i += 1;
        }
        self.n().saturating_sub(1)
    }

    /// Skips a generic-argument list starting at `<`; returns the index
    /// just past the matching `>`. Handles `>>` closing two levels.
    pub fn skip_generics(&self, start: usize) -> usize {
        if self.text_at(start as isize) != "<" {
            return start;
        }
        let mut depth = 0isize;
        let mut i = start;
        while i < self.n() {
            match self.text(i) {
                "<" | "<<" => depth += if self.text(i) == "<<" { 2 } else { 1 },
                ">" => depth -= 1,
                ">>" => depth -= 2,
                // `->` inside fn-pointer generic args does not nest.
                _ => {}
            }
            i += 1;
            if depth <= 0 {
                break;
            }
        }
        i
    }

    /// Raw text of the token range `[start, end]`, space-separated.
    pub fn span_text(&self, start: usize, end: usize) -> String {
        let mut out = String::new();
        for i in start..=end.min(self.n().saturating_sub(1)) {
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.text(i));
        }
        out
    }
}

/// Marks significant tokens inside test-only items: `#[cfg(test)] mod`,
/// `#[test]` and `#[should_panic]` fns. Indexed like the cursor's sig
/// stream.
pub fn test_mask(cur: &Cursor) -> Vec<bool> {
    let n = cur.n();
    let mut mask = vec![false; n];
    let mut i = 0;
    while i < n {
        if cur.text(i) == "#" && i + 1 < n && cur.text(i + 1) == "[" {
            let (attr_end, is_test) = scan_attr(cur, i + 1);
            if is_test {
                // Skip any further attributes before the item itself.
                let mut j = attr_end + 1;
                while j + 1 < n && cur.text(j) == "#" && cur.text(j + 1) == "[" {
                    let (e, _) = scan_attr(cur, j + 1);
                    j = e + 1;
                }
                let end = cur.item_end(j);
                for m in mask.iter_mut().take(end.min(n - 1) + 1).skip(i) {
                    *m = true;
                }
                i = end + 1;
                continue;
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// From the `[` of an attribute, returns (index of matching `]`, whether
/// the attribute marks test-only code).
fn scan_attr(cur: &Cursor, open: usize) -> (usize, bool) {
    let n = cur.n();
    let mut depth = 0usize;
    let mut end = n - 1;
    for i in open..n {
        match cur.text(i) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let inner: Vec<&str> = (open + 1..end).map(|i| cur.text(i)).collect();
    let is_test = match inner.first() {
        Some(&"test") | Some(&"should_panic") => true,
        Some(&"cfg") => !inner.contains(&"not") && inner.contains(&"test"),
        _ => false,
    };
    (end, is_test)
}

/// If sig index `i` is a panic-family site, returns a display name:
/// `.unwrap()` / `.expect()` / `panic!` / `unreachable!` / ...
pub fn panic_site(cur: &Cursor, i: usize) -> Option<&'static str> {
    let t = cur.tok(i);
    if t.kind != TokenKind::Ident {
        return None;
    }
    let prev = cur.text_at(i as isize - 1);
    let next = cur.text_at(i as isize + 1);
    match t.text.as_str() {
        "unwrap" if prev == "." && next == "(" => Some(".unwrap()"),
        "expect" if prev == "." && next == "(" => Some(".expect()"),
        "panic" if next == "!" && prev != "::" => Some("panic!"),
        "unreachable" if next == "!" && prev != "::" => Some("unreachable!"),
        "todo" if next == "!" && prev != "::" => Some("todo!"),
        "unimplemented" if next == "!" && prev != "::" => Some("unimplemented!"),
        _ => None,
    }
}

/// Parses one file's tokens into the lightweight AST. Never fails.
pub fn parse_file(tokens: &[Token]) -> (File, Cursor<'_>) {
    let cur = Cursor::new(tokens);
    let items = parse_items(&cur, 0, cur.n());
    (File { items }, cur)
}

/// Parses the items in `[start, end)`.
fn parse_items(cur: &Cursor, start: usize, end: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        let item_start = i;
        // Attributes (`#[...]` / `#![...]`) are skipped, not modelled.
        if cur.text(i) == "#" {
            let mut j = i + 1;
            if cur.text_at(j as isize) == "!" {
                j += 1;
            }
            if cur.text_at(j as isize) == "[" {
                i = cur.match_bracket(j) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        // Visibility.
        let mut vis = Vis::Private;
        if cur.text(i) == "pub" {
            vis = Vis::Pub;
            i += 1;
            if cur.text_at(i as isize) == "(" {
                vis = Vis::Scoped;
                i = cur.match_paren(i) + 1;
            }
        }
        // Qualifiers before the item keyword.
        while i < end
            && (matches!(cur.text(i), "const" | "async" | "unsafe" | "extern" | "default")
                && matches!(
                    cur.text_at(i as isize + 1),
                    "fn" | "unsafe" | "async" | "extern" | "impl" | "trait"
                )
                || (cur.text(i) == "extern" && cur.kind(i + 1) == TokenKind::StrLit))
        {
            i += 1;
            if cur.kind(i.min(end - 1)) == TokenKind::StrLit {
                i += 1; // ABI string of `extern "C"`
            }
        }
        if i >= end {
            break;
        }
        let line = cur.line(item_start);
        match cur.text(i) {
            "fn" => {
                let (f, next) = parse_fn(cur, i, vis, end);
                let span = Span { start: item_start, end: next.saturating_sub(1) };
                items.push(Item { kind: ItemKind::Fn(f), line, span });
                i = next;
            }
            "impl" => {
                let (im, next) = parse_impl(cur, i, end);
                let span = Span { start: item_start, end: next.saturating_sub(1) };
                items.push(Item { kind: ItemKind::Impl(im), line, span });
                i = next;
            }
            "trait" => {
                let (tr, next) = parse_trait(cur, i, vis, end);
                let span = Span { start: item_start, end: next.saturating_sub(1) };
                items.push(Item { kind: ItemKind::Trait(tr), line, span });
                i = next;
            }
            "mod" => {
                let name = cur.text_at(i as isize + 1).to_string();
                let after = i + 2;
                if cur.text_at(after as isize) == "{" {
                    let close = cur.match_brace(after);
                    let inner = parse_items(cur, after + 1, close);
                    let span = Span { start: item_start, end: close };
                    items.push(Item {
                        kind: ItemKind::Mod(ModItem { name, items: inner }),
                        line,
                        span,
                    });
                    i = close + 1;
                } else {
                    let e = cur.item_end(i);
                    items.push(Item {
                        kind: ItemKind::Mod(ModItem { name, items: Vec::new() }),
                        line,
                        span: Span { start: item_start, end: e },
                    });
                    i = e + 1;
                }
            }
            "struct" => {
                let (st, next) = parse_struct(cur, i, vis);
                let span = Span { start: item_start, end: next.saturating_sub(1) };
                items.push(Item { kind: ItemKind::Struct(st), line, span });
                i = next;
            }
            "use" => {
                // A use-tree's `{ ... }` is a group, not a body: the item
                // ends at the `;`, which `item_end` would stop short of.
                let mut e = i + 1;
                while e < cur.n() && cur.text(e) != ";" {
                    if cur.text(e) == "{" {
                        e = cur.match_brace(e);
                    }
                    e += 1;
                }
                let e = e.min(cur.n().saturating_sub(1));
                let text = cur.span_text(i + 1, e.saturating_sub(1));
                items.push(Item {
                    kind: ItemKind::Use(UseItem { text }),
                    line,
                    span: Span { start: item_start, end: e },
                });
                i = e + 1;
            }
            "enum" | "union" | "static" | "type" | "const" | "macro_rules" | "macro" => {
                let e = cur.item_end(i);
                items.push(Item {
                    kind: ItemKind::Other,
                    line,
                    span: Span { start: item_start, end: e },
                });
                i = e + 1;
            }
            _ => {
                // Unrecognised (stray macro invocation, extern block...):
                // skip one whole "item" by delimiter matching.
                let e = cur.item_end(i);
                items.push(Item {
                    kind: ItemKind::Other,
                    line,
                    span: Span { start: item_start, end: e },
                });
                i = e + 1;
            }
        }
    }
    items
}

/// Parses a `fn` item starting at the `fn` keyword; returns the item and
/// the index just past it.
fn parse_fn(cur: &Cursor, fn_kw: usize, vis: Vis, end: usize) -> (FnItem, usize) {
    let name_idx = fn_kw + 1;
    let name = if name_idx < end && cur.kind(name_idx) == TokenKind::Ident {
        cur.text(name_idx).to_string()
    } else {
        String::new()
    };
    let line = cur.line(name_idx.min(cur.n().saturating_sub(1)));
    let mut i = name_idx + 1;
    i = cur.skip_generics(i);
    let (params, args_close) = if cur.text_at(i as isize) == "(" {
        let close = cur.match_paren(i);
        (cur.span_text(i + 1, close.saturating_sub(1)), close)
    } else {
        (String::new(), i)
    };
    // Return type: after `->`, up to the body, `;`, or `where`.
    let mut ret = String::new();
    let mut j = args_close + 1;
    if cur.text_at(j as isize) == "->" {
        let ret_start = j + 1;
        j = ret_start;
        let mut depth = 0isize;
        while j < cur.n() {
            match cur.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                ";" | "where" if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        ret = cur.span_text(ret_start, j.saturating_sub(1));
    }
    // Where clause / trailing tokens until the body or `;`.
    let mut body = None;
    let mut next = j;
    while next < cur.n() {
        match cur.text(next) {
            "{" => {
                let close = cur.match_brace(next);
                let span = Span { start: next, end: close };
                let nodes = extract_nodes(cur, next, close);
                body = Some(Body { span, nodes });
                next = close + 1;
                break;
            }
            ";" => {
                next += 1;
                break;
            }
            _ => next += 1,
        }
    }
    (FnItem { name, vis, line, params, ret, body }, next)
}

/// Parses an `impl` block starting at the `impl` keyword.
fn parse_impl(cur: &Cursor, impl_kw: usize, end: usize) -> (ImplItem, usize) {
    let mut i = cur.skip_generics(impl_kw + 1);
    // First type path (the trait for `impl T for S`, else the self type).
    let (first, after_first) = parse_type_head(cur, i);
    i = after_first;
    let (trait_name, self_ty) = if cur.text_at(i as isize) == "for" {
        let (ty, after) = parse_type_head(cur, i + 1);
        i = after;
        (Some(first), ty)
    } else {
        (None, first)
    };
    // Skip to the block (through any where clause).
    while i < end && cur.text(i) != "{" && cur.text(i) != ";" {
        i += 1;
    }
    if cur.text_at(i as isize) != "{" {
        return (ImplItem { trait_name, self_ty, fns: Vec::new() }, i + 1);
    }
    let close = cur.match_brace(i);
    let inner = parse_items(cur, i + 1, close);
    let fns = inner
        .into_iter()
        .filter_map(|it| match it.kind {
            ItemKind::Fn(f) => Some(f),
            _ => None,
        })
        .collect();
    (ImplItem { trait_name, self_ty, fns }, close + 1)
}

/// Parses a `trait` item starting at the `trait` keyword.
fn parse_trait(cur: &Cursor, trait_kw: usize, vis: Vis, end: usize) -> (TraitItem, usize) {
    let name = cur.text_at(trait_kw as isize + 1).to_string();
    let mut i = cur.skip_generics(trait_kw + 2);
    while i < end && cur.text(i) != "{" && cur.text(i) != ";" {
        i += 1;
    }
    if cur.text_at(i as isize) != "{" {
        return (TraitItem { name, vis, fns: Vec::new() }, i + 1);
    }
    let close = cur.match_brace(i);
    let inner = parse_items(cur, i + 1, close);
    let fns = inner
        .into_iter()
        .filter_map(|it| match it.kind {
            ItemKind::Fn(f) => Some(f),
            _ => None,
        })
        .collect();
    (TraitItem { name, vis, fns }, close + 1)
}

/// Parses a `struct` item starting at the `struct` keyword.
fn parse_struct(cur: &Cursor, struct_kw: usize, vis: Vis) -> (StructItem, usize) {
    let name = cur.text_at(struct_kw as isize + 1).to_string();
    let mut i = cur.skip_generics(struct_kw + 2);
    // Skip where clause.
    while i < cur.n() && !matches!(cur.text(i), "{" | "(" | ";") {
        i += 1;
    }
    let mut fields = Vec::new();
    let next = match cur.text_at(i as isize) {
        "{" => {
            let close = cur.match_brace(i);
            // Named fields: `[vis] name : <type tokens> ,`
            let mut j = i + 1;
            while j < close {
                // Skip attributes and visibility on the field.
                if cur.text(j) == "#" && cur.text_at(j as isize + 1) == "[" {
                    j = cur.match_bracket(j + 1) + 1;
                    continue;
                }
                if cur.text(j) == "pub" {
                    j += 1;
                    if cur.text_at(j as isize) == "(" {
                        j = cur.match_paren(j) + 1;
                    }
                    continue;
                }
                if cur.kind(j) == TokenKind::Ident && cur.text_at(j as isize + 1) == ":" {
                    let fname = cur.text(j).to_string();
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut depth = 0isize;
                    while k < close {
                        match cur.text(k) {
                            "(" | "[" | "{" | "<" => depth += 1,
                            ")" | "]" | "}" | ">" => depth -= 1,
                            ">>" => depth -= 2,
                            "," if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    fields.push((fname, cur.span_text(ty_start, k.saturating_sub(1))));
                    j = k + 1;
                    continue;
                }
                j += 1;
            }
            close + 1
        }
        // Tuple struct: resume *past* the closing paren, or `item_end`
        // counts it as unbalanced and swallows the following items.
        "(" => cur.item_end(cur.match_paren(i) + 1) + 1,
        _ => i + 1,
    };
    (StructItem { name, vis, fields }, next)
}

/// The head identifier of a type path (`Foo` from `crate::x::Foo<'a, T>`),
/// plus the index just past the whole path.
fn parse_type_head(cur: &Cursor, start: usize) -> (String, usize) {
    let mut i = start;
    // Leading `&`, `&mut`, `dyn`.
    while matches!(cur.text_at(i as isize), "&" | "mut" | "dyn") {
        i += 1;
    }
    if cur.kind(i.min(cur.n().saturating_sub(1))) == TokenKind::Lifetime {
        i += 1;
    }
    let mut head = String::new();
    while i < cur.n() {
        if cur.kind(i) == TokenKind::Ident {
            head = cur.text(i).to_string();
            i += 1;
            if cur.text_at(i as isize) == "::" {
                i += 1;
                continue;
            }
            break;
        }
        break;
    }
    i = cur.skip_generics(i);
    (head, i)
}

/// Tokens that may directly precede a closure's `|` (or `||`). Everything
/// else (idents, literals, `)`) means bitwise/logical or.
fn closure_position(prev: &str, prev_kind: Option<TokenKind>) -> bool {
    if matches!(
        prev,
        "(" | "," | "=" | "=>" | "{" | ";" | ":" | "move" | "return" | "else" | "[" | "&&"
            | "||" | "!" | "==" | "!=" | ".." | "..=" | "?" | ""
    ) {
        return true;
    }
    // `match x { _ => |y| ... }` etc. are covered above; a preceding
    // ident/literal/`)`/`]` is an operand, so `|` is an operator there.
    let _ = prev_kind;
    false
}

/// Extracts the flat node list from a body's brace span `[open, close]`.
fn extract_nodes(cur: &Cursor, open: usize, close: usize) -> Vec<Node> {
    let mut nodes = Vec::new();
    // Stack of enclosing-block close indices, for `let` scope ends.
    let mut blocks: Vec<usize> = vec![close];
    let mut i = open + 1;
    while i < close {
        let t = cur.text(i);
        let line = cur.line(i);
        // Maintain the block stack.
        if t == "{" {
            blocks.push(cur.match_brace(i));
            i += 1;
            continue;
        }
        if t == "}" {
            if blocks.len() > 1 && *blocks.last().unwrap_or(&close) == i {
                blocks.pop();
            }
            i += 1;
            continue;
        }
        // `let` binding.
        if t == "let" {
            let (node, next) = parse_let(cur, i, *blocks.last().unwrap_or(&close), close);
            if let Some(n) = node {
                nodes.push(n);
            }
            i = next;
            continue;
        }
        // `for <pat> in <iter> {`
        if t == "for" && cur.kind(i) == TokenKind::Ident && is_for_loop(cur, i) {
            if let Some((node, _next)) = parse_for(cur, i, close) {
                nodes.push(node);
            }
            // Continue scanning *inside* the header and body (flat list).
            i += 1;
            continue;
        }
        // Closure.
        if (t == "|" || t == "||") && closure_position(cur.text_at(i as isize - 1), None) {
            if let Some(node) = parse_closure(cur, i, close) {
                nodes.push(node);
            }
            i += 1;
            continue;
        }
        // Macro invocation: `name ! ( ... )` / `[...]` / `{...}`.
        if cur.kind(i) == TokenKind::Ident && cur.text_at(i as isize + 1) == "!" {
            let d = cur.text_at(i as isize + 2);
            if matches!(d, "(" | "[" | "{") {
                let open_d = i + 2;
                let close_d = match d {
                    "(" => cur.match_paren(open_d),
                    "[" => cur.match_bracket(open_d),
                    _ => cur.match_brace(open_d),
                };
                nodes.push(Node::Macro {
                    name: cur.text(i).to_string(),
                    args: Span { start: open_d, end: close_d },
                    line,
                });
                i += 3; // keep scanning inside the macro args
                continue;
            }
        }
        // Call or method call: ident followed by `(`, or turbofish
        // `ident :: < ... > (`.
        if cur.kind(i) == TokenKind::Ident && !is_keyword(t) {
            let mut after = i + 1;
            if cur.text_at(after as isize) == "::" && cur.text_at(after as isize + 1) == "<" {
                after = cur.skip_generics(after + 1);
            }
            if cur.text_at(after as isize) == "(" {
                let args_close = cur.match_paren(after);
                let args = Span { start: after, end: args_close };
                if cur.text_at(i as isize - 1) == "." {
                    let (recv, recv_base, recv_start) = receiver_chain(cur, i - 1, open);
                    nodes.push(Node::MethodCall {
                        recv,
                        recv_base,
                        name: t.to_string(),
                        args,
                        span: Span { start: recv_start, end: args_close },
                        line,
                    });
                } else {
                    let (path, path_start) = leading_path(cur, i, open);
                    nodes.push(Node::Call {
                        path,
                        args,
                        span: Span { start: path_start, end: args_close },
                        line,
                    });
                }
                i += 1; // scan into the arguments too
                continue;
            }
        }
        i += 1;
    }
    nodes
}

/// Whether the `for` at `i` heads a loop (vs a generic bound `for<'a>` or
/// `impl Trait for`).
fn is_for_loop(cur: &Cursor, i: usize) -> bool {
    if cur.text_at(i as isize + 1) == "<" {
        return false; // `for<'a>` higher-ranked bound
    }
    !matches!(cur.text_at(i as isize - 1), "impl") && {
        // A loop header contains `in` before its `{`.
        let mut j = i + 1;
        let mut depth = 0isize;
        while j < cur.n() {
            match cur.text(j) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "in" if depth == 0 => return true,
                "{" | ";" if depth == 0 => return false,
                _ => {}
            }
            j += 1;
        }
        false
    }
}

/// Parses a `for <pat> in <iter> { ... }` header at `i`.
fn parse_for(cur: &Cursor, i: usize, limit: usize) -> Option<(Node, usize)> {
    let line = cur.line(i);
    let mut j = i + 1;
    let mut depth = 0isize;
    let pat_start = j;
    while j < limit {
        match cur.text(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "in" if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let pat = cur.span_text(pat_start, j.saturating_sub(1));
    let iter_start = j + 1;
    let mut k = iter_start;
    let mut d = 0isize;
    while k < limit {
        match cur.text(k) {
            "(" | "[" => d += 1,
            ")" | "]" => d -= 1,
            "{" if d == 0 => break,
            _ => {}
        }
        k += 1;
    }
    if k >= limit || k == iter_start {
        return None;
    }
    let body_close = cur.match_brace(k);
    Some((
        Node::For {
            pat,
            iter: Span { start: iter_start, end: k - 1 },
            iter_text: normalized_text(cur, iter_start, k - 1),
            body: Span { start: k, end: body_close },
            line,
        },
        k,
    ))
}

/// Parses a closure at the `|` / `||` token `i`.
fn parse_closure(cur: &Cursor, i: usize, limit: usize) -> Option<Node> {
    let line = cur.line(i);
    let params_end = if cur.text(i) == "||" {
        i
    } else {
        // Find the closing `|`, skipping nested delimiters in parameter
        // types (`|x: Vec<u8>|`).
        let mut j = i + 1;
        let mut depth = 0isize;
        loop {
            if j >= limit {
                return None;
            }
            match cur.text(j) {
                "(" | "[" | "<" => depth += 1,
                ")" | "]" | ">" => depth -= 1,
                "|" if depth <= 0 => break,
                ";" => return None, // gave up: not a closure after all
                _ => {}
            }
            j += 1;
        }
        j
    };
    let params = if params_end > i {
        cur.span_text(i + 1, params_end.saturating_sub(1))
    } else {
        String::new()
    };
    // Body: a block, or an expression running to the next `,` / `)` / `;`
    // / `]` / `}` at relative depth 0.
    let body_start = params_end + 1;
    if body_start >= limit {
        return None;
    }
    let body_end = if cur.text(body_start) == "{" {
        cur.match_brace(body_start)
    } else {
        let mut j = body_start;
        let mut depth = 0isize;
        while j < limit {
            match cur.text(j) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth > 0 => depth -= 1,
                ")" | "]" | "}" | "," | ";" => break,
                _ => {}
            }
            j += 1;
        }
        j.saturating_sub(1).max(body_start)
    };
    Some(Node::Closure {
        params,
        body: Span { start: body_start, end: body_end },
        span: Span { start: i, end: body_end },
        line,
    })
}

/// Parses `let [mut] <pat> [: ty] [= init] ;` at the `let` keyword.
/// Returns the node (when a simple name binds) and the index just past
/// the `let` keyword (scanning continues inside the initializer).
fn parse_let(
    cur: &Cursor,
    let_kw: usize,
    scope_end: usize,
    limit: usize,
) -> (Option<Node>, usize) {
    let line = cur.line(let_kw);
    let mut i = let_kw + 1;
    while matches!(cur.text_at(i as isize), "mut" | "ref") {
        i += 1;
    }
    let name = if i < limit && cur.kind(i) == TokenKind::Ident && !is_keyword(cur.text(i)) {
        // Simple-ident pattern only: `let x` / `let mut x` followed by
        // `:` or `=` (not `let Some(x)`, `let (a, b)`).
        if matches!(cur.text_at(i as isize + 1), ":" | "=" | ";") {
            cur.text(i).to_string()
        } else {
            String::new()
        }
    } else {
        String::new()
    };
    // Find `=` and `;` at depth 0 from the pattern onwards.
    let mut ty = String::new();
    let mut eq = None;
    let mut semi = None;
    let mut j = i;
    let mut depth = 0isize;
    let mut angle = 0isize;
    let mut colon = None;
    while j < limit {
        match cur.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" if depth == 0 && eq.is_none() => angle += 1,
            ">" if depth == 0 && eq.is_none() => angle -= 1,
            ">>" if depth == 0 && eq.is_none() => angle -= 2,
            ":" if depth == 0 && angle == 0 && eq.is_none() && colon.is_none() => {
                colon = Some(j);
            }
            "=" if depth == 0 && angle <= 0 && eq.is_none() => eq = Some(j),
            ";" if depth == 0 => {
                semi = Some(j);
                break;
            }
            _ => {}
        }
        if depth < 0 {
            break;
        }
        j += 1;
    }
    let semi = semi.unwrap_or(j.min(limit.saturating_sub(1)));
    if let (Some(c), Some(e)) = (colon, eq) {
        if c < e {
            ty = cur.span_text(c + 1, e.saturating_sub(1));
        }
    } else if let Some(c) = colon {
        ty = cur.span_text(c + 1, semi.saturating_sub(1));
    }
    let init = match eq {
        Some(e) if e < semi.saturating_sub(1) => {
            Span { start: e + 1, end: semi.saturating_sub(1) }
        }
        _ => Span { start: semi, end: semi.saturating_sub(1).max(semi) },
    };
    let node = Node::Let { name, ty, init, scope_end, line };
    (Some(node), let_kw + 1)
}

/// Walks the receiver chain backwards from the `.` at `dot`, returning
/// `(normalized text, base identifier, chain start index)`. Index
/// expressions are collapsed to `[_]`; whitespace is dropped.
fn receiver_chain(cur: &Cursor, dot: usize, floor: usize) -> (String, String, usize) {
    let mut j = dot as isize - 1;
    let floor = floor as isize;
    let mut start = dot;
    loop {
        if j <= floor {
            break;
        }
        let t = cur.text(j as usize);
        match t {
            ")" => {
                // Backward-match the paren group.
                let mut depth = 0isize;
                while j > floor {
                    match cur.text(j as usize) {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                start = j.max(floor + 1) as usize;
                j -= 1;
            }
            "]" => {
                let mut depth = 0isize;
                while j > floor {
                    match cur.text(j as usize) {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                start = j.max(floor + 1) as usize;
                j -= 1;
            }
            "?" | "." | "::" => {
                j -= 1;
            }
            // `self` / `Self` are keywords but valid chain members.
            _ if cur.kind(j as usize) == TokenKind::Ident
                && (!is_keyword(t) || t == "self" || t == "Self") =>
            {
                start = j as usize;
                // Continue only through `.` / `::` / `?` chains.
                if matches!(cur.text_at(j - 1), "." | "::" | "?") {
                    j -= 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    // Render `[start, dot-1]`, collapsing bracket groups.
    let mut text = String::new();
    let mut base = String::new();
    let mut k = start;
    while k < dot {
        let t = cur.text(k);
        if t == "[" {
            let close = cur.match_bracket(k);
            text.push_str("[_]");
            k = close + 1;
            continue;
        }
        if base.is_empty() && cur.kind(k) == TokenKind::Ident {
            base = t.to_string();
        }
        text.push_str(t);
        k += 1;
    }
    (text, base, start)
}

/// Collects the `a::b::name` path ending at the ident `i` (walking back
/// through `::`), returning the segments and the path's start index.
fn leading_path(cur: &Cursor, i: usize, floor: usize) -> (Vec<String>, usize) {
    let mut segs = vec![cur.text(i).to_string()];
    let mut j = i as isize - 1;
    let floor = floor as isize;
    let mut start = i;
    while j > floor && cur.text(j as usize) == "::" {
        // Skip a generic segment `::<...>` (turbofish appears after, not
        // before, so `<` here means a qualified-self path; give up).
        let prev = j - 1;
        if prev > floor && cur.kind(prev as usize) == TokenKind::Ident {
            segs.push(cur.text(prev as usize).to_string());
            start = prev as usize;
            j = prev - 1;
        } else {
            break;
        }
    }
    segs.reverse();
    (segs, start)
}

/// Rendered text of `[start, end]` with whitespace dropped and bracket
/// groups collapsed to `[_]` — the normalization receiver keys use.
fn normalized_text(cur: &Cursor, start: usize, end: usize) -> String {
    let mut out = String::new();
    let mut k = start;
    while k <= end.min(cur.n().saturating_sub(1)) {
        let t = cur.text(k);
        if t == "[" {
            let close = cur.match_bracket(k);
            out.push_str("[_]");
            k = close + 1;
            continue;
        }
        out.push_str(t);
        k += 1;
    }
    out
}

/// Rust keywords that can precede `(` without being calls.
fn is_keyword(t: &str) -> bool {
    matches!(
        t,
        "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "break" | "continue"
            | "let" | "fn" | "impl" | "trait" | "struct" | "enum" | "union" | "mod" | "use"
            | "pub" | "const" | "static" | "mut" | "ref" | "move" | "unsafe" | "extern"
            | "async" | "await" | "dyn" | "where" | "as" | "in" | "type" | "self" | "Self"
            | "super" | "crate" | "true" | "false"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ItemKind, Node, Vis};
    use crate::lexer::tokenize;

    fn parse(src: &str) -> File {
        let toks = tokenize(src);
        let (file, _) = parse_file(&toks);
        // Leak is fine in tests; keeps the helper signature simple.
        file
    }

    fn body_nodes(f: &FnItem) -> &[Node] {
        f.body.as_ref().map(|b| b.nodes.as_slice()).unwrap_or(&[])
    }

    #[test]
    fn items_and_visibility() {
        let file = parse(
            "pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub struct S { x: u8 }\n",
        );
        let fns: Vec<_> = file.all_fns();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].1.name, "a");
        assert_eq!(fns[0].1.vis, Vis::Pub);
        assert_eq!(fns[1].1.vis, Vis::Private);
        assert_eq!(fns[2].1.vis, Vis::Scoped);
        assert!(file.items.iter().any(|i| matches!(
            &i.kind,
            ItemKind::Struct(s) if s.name == "S" && s.fields == vec![("x".into(), "u8".into())]
        )));
    }

    #[test]
    fn impl_blocks_and_trait_impls() {
        let file = parse(
            "impl Foo { pub fn new() -> Self { Self } fn hidden(&self) {} }\n\
             impl std::fmt::Display for Foo { fn fmt(&self, f: &mut F) -> R { write!(f, \"\") } }\n\
             unsafe impl Send for Foo {}\n",
        );
        let impls: Vec<_> = file
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Impl(im) => Some(im),
                _ => None,
            })
            .collect();
        assert_eq!(impls.len(), 3);
        assert_eq!(impls[0].trait_name, None);
        assert_eq!(impls[0].self_ty, "Foo");
        assert_eq!(impls[0].fns.len(), 2);
        assert_eq!(impls[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(impls[1].self_ty, "Foo");
        assert_eq!(impls[2].trait_name.as_deref(), Some("Send"));
    }

    #[test]
    fn fn_signature_parts() {
        let file = parse(
            "pub fn f<T: Clone>(xs: &[T], n: usize) -> Result<Vec<T>, String> where T: Send { todo() }",
        );
        let (_, f) = file.all_fns()[0];
        assert_eq!(f.name, "f");
        assert!(f.params.contains("xs"));
        assert!(f.ret.contains("Result"));
        assert!(f.body.is_some());
    }

    #[test]
    fn let_bindings_capture_name_type_and_scope() {
        let file = parse(
            "fn f() { let m: HashMap<u64, f64> = HashMap::new(); { let inner = 1; } let (a, b) = p; }",
        );
        let nodes = body_nodes(file.all_fns()[0].1);
        let lets: Vec<_> = nodes
            .iter()
            .filter_map(|n| match n {
                Node::Let { name, ty, .. } => Some((name.clone(), ty.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 3);
        assert_eq!(lets[0].0, "m");
        assert!(lets[0].1.contains("HashMap"));
        assert_eq!(lets[1].0, "inner");
        assert_eq!(lets[2].0, ""); // tuple pattern binds no simple name
    }

    #[test]
    fn method_calls_carry_receiver_chains() {
        let file = parse("fn f() { self.cache.iter().map(g).collect::<Vec<_>>(); slots[i].lock(); }");
        let nodes = body_nodes(file.all_fns()[0].1);
        let methods: Vec<(String, String)> = nodes
            .iter()
            .filter_map(|n| match n {
                Node::MethodCall { recv, name, .. } => Some((recv.clone(), name.clone())),
                _ => None,
            })
            .collect();
        assert!(methods.contains(&("self.cache".into(), "iter".into())));
        assert!(methods.contains(&("slots[_]".into(), "lock".into())));
        // Chain links keep their full receiver text.
        assert!(methods.iter().any(|(r, n)| n == "collect" && r.contains("iter()")));
    }

    #[test]
    fn calls_macros_and_for_loops() {
        let file = parse(
            "fn f(m: &M) { lgo_runtime::split_seed(7, 3); println!(\"x\"); for (k, v) in &m.map { g(k); } }",
        );
        let nodes = body_nodes(file.all_fns()[0].1);
        assert!(nodes.iter().any(|n| matches!(
            n,
            Node::Call { path, .. } if path == &vec!["lgo_runtime".to_string(), "split_seed".to_string()]
        )));
        assert!(nodes.iter().any(|n| matches!(n, Node::Macro { name, .. } if name == "println")));
        assert!(nodes.iter().any(|n| matches!(
            n,
            Node::For { pat, iter_text, .. } if pat.contains('k') && iter_text == "&m.map"
        )));
        // The call inside the for body is still extracted (flat list).
        assert!(nodes.iter().any(|n| matches!(
            n,
            Node::Call { path, .. } if path == &vec!["g".to_string()]
        )));
    }

    #[test]
    fn closures_vs_bitwise_or() {
        let file = parse("fn f(a: u8, b: u8) -> u8 { let c = a | b; xs.map(|x| x + 1); c }");
        let nodes = body_nodes(file.all_fns()[0].1);
        let closures: Vec<_> = nodes
            .iter()
            .filter(|n| matches!(n, Node::Closure { .. }))
            .collect();
        assert_eq!(closures.len(), 1, "bitwise or must not parse as a closure");
    }

    #[test]
    fn nested_closures_nest_by_span() {
        let file = parse("fn f() { par_map(&xs, |w| inner(move || w.lock())); }");
        let nodes = body_nodes(file.all_fns()[0].1);
        let closures: Vec<Span> = nodes
            .iter()
            .filter_map(|n| match n {
                Node::Closure { body, .. } => Some(*body),
                _ => None,
            })
            .collect();
        assert_eq!(closures.len(), 2);
        assert!(closures[0].contains(closures[1]) || closures[1].contains(closures[0]));
        let lock = nodes.iter().find_map(|n| match n {
            Node::MethodCall { name, span, .. } if name == "lock" => Some(*span),
            _ => None,
        });
        let lock = lock.expect("lock call extracted");
        assert!(closures.iter().all(|c| c.contains(lock)));
    }

    #[test]
    fn macro_rules_and_thread_local_do_not_derail() {
        let file = parse(
            "macro_rules! m { ($x:expr) => { $x.unwrap() }; }\n\
             thread_local! { static T: Cell<bool> = const { Cell::new(false) }; }\n\
             pub fn after() {}\n",
        );
        assert!(file.all_fns().iter().any(|(_, f)| f.name == "after"));
    }

    #[test]
    fn traits_with_default_bodies() {
        let file = parse(
            "pub trait Defense { fn score(&self) -> f64; fn try_score(&self) -> Option<f64> { None } }",
        );
        let tr = file
            .items
            .iter()
            .find_map(|i| match &i.kind {
                ItemKind::Trait(t) => Some(t),
                _ => None,
            })
            .expect("trait parsed");
        assert_eq!(tr.name, "Defense");
        assert_eq!(tr.fns.len(), 2);
        assert!(tr.fns[0].body.is_none());
        assert!(tr.fns[1].body.is_some());
    }
}
