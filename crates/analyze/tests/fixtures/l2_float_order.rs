//! L2 fixture: NaN-unsound float ordering. Scope: L2 only.

pub fn ranked(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ L2
    xs
}

pub fn raw_less_than(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| if a < b { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater }); //~ L2
    xs
}

pub fn raw_greater_in_max_by(xs: &[f64]) -> Option<&f64> {
    xs.iter()
        .max_by(|a, b| if a > b { std::cmp::Ordering::Greater } else { std::cmp::Ordering::Less }) //~ L2
}

pub fn clean_total_cmp(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

pub fn clean_integer_keys(mut xs: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    xs.sort_by(|a, b| a.0.cmp(&b.0));
    xs
}

pub fn comparisons_outside_comparators_are_fine(x: f64, y: f64) -> bool {
    x < y
}
