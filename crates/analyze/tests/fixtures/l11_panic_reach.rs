//! L11 fixture: a `pub` API fn that looks clean locally but *transitively*
//! reaches a panic through the call graph, with no absorption point
//! (Result return, `try_` prefix, or `try_` twin) along the way. Scope:
//! l11 only — direct panic sites are L1/L3's job.

fn deep(x: f64) -> f64 {
    if x.is_nan() {
        panic!("nan risk score");
    }
    x
}

fn middle(xs: &[f64]) -> f64 {
    deep(xs[0])
}

pub fn profile(xs: &[f64]) -> f64 { //~ L11
    middle(xs)
}

fn checked(xs: &[f64]) -> Result<f64, String> {
    Ok(middle(xs))
}

pub fn shielded(xs: &[f64]) -> f64 {
    checked(xs).unwrap_or(0.0)
}

pub fn twinned_reach(xs: &[f64]) -> f64 {
    middle(xs)
}

pub fn try_twinned_reach(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(twinned_reach(xs))
}

// lint: allow(L11): callers guarantee non-NaN input per the module contract
pub fn excused_reach(xs: &[f64]) -> f64 {
    middle(xs)
}
