//! L7 fixture: stdout/stderr noise in library code.
//!
//! Defense-crate libraries run inside parallel pipelines; bare prints
//! interleave across workers and bypass the structured trace layer.
//! Scope: L7 only.

pub fn chatty_fit(n: usize) {
    println!("fitting on {n} windows"); //~ L7
    eprintln!("warning: small training set"); //~ L7
}

pub fn partial_line(progress: f64) {
    print!("\rprogress: {progress:.0}%"); //~ L7
    eprint!("."); //~ L7
}

pub fn excused_diagnostic(e: &str) {
    eprintln!("detector degraded: {e}"); // lint: allow(L7): operator-facing fault diagnostic, required by the degradation contract
}

pub fn qualified_macro_path() {
    // A `::println!` path is not a bare call site (mirrors `::panic!` in L1).
    std::println!("expansion-internal");
}

pub fn not_code() -> &'static str {
    "a string mentioning println! is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_masked() {
        println!("test output is fine");
    }
}
