//! L4 fixture: equality against float literals. Scope: L4 only.

pub fn is_flag(v: f64) -> bool {
    v == 1.0 //~ L4
}

pub fn literal_on_the_left(v: f64) -> bool {
    0.0 != v //~ L4
}

pub fn exponent_literal(v: f64) -> bool {
    v == 1e-3 //~ L4
}

pub fn suffixed_literal(v: f64) -> bool {
    v == 2f64 //~ L4
}

pub fn integer_equality_is_fine(v: usize) -> bool {
    v == 1
}

pub fn excused(v: f64) -> bool {
    // lint: allow(L4): 0/1 flag channel stored exactly
    v == 1.0
}

pub fn epsilon_comparison_is_fine(v: f64) -> bool {
    (v - 1.0).abs() < 1e-9
}
