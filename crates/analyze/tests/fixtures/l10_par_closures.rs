//! L10 fixture: closures handed to the deterministic-parallelism adapters
//! must not mutate captured shared state — even synchronized touches
//! interleave schedule-dependently. Index-addressed slots and state the
//! closure owns are the blessed patterns. Scope: l10 only.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

pub fn shared_mutex_accumulator(pool: &Pool, xs: &[f64]) -> f64 {
    let total = Mutex::new(0.0);
    pool.par_map(xs, |x| {
        *total.lock().unwrap() += x; //~ L10
    });
    total.into_inner().unwrap()
}

pub fn shared_atomic_counter(pool: &Pool, xs: &[f64]) -> usize {
    let hits = AtomicUsize::new(0);
    pool.scope(|s| {
        hits.fetch_add(1, Ordering::SeqCst); //~ L10
        s.run(xs);
    });
    hits.into_inner()
}

pub fn index_addressed_slots(pool: &Pool, xs: &[f64], slots: &[AtomicU64]) {
    pool.par_map_indexed(xs, |i, x| {
        slots[i].store(x.to_bits(), Ordering::SeqCst);
    });
}

pub fn closure_owned_state(pool: &Pool, xs: &[f64]) -> Vec<f64> {
    pool.par_chunks(xs, |chunk| {
        let acc = std::cell::RefCell::new(0.0);
        *acc.borrow_mut() += chunk[0];
        acc.into_inner()
    })
}

pub fn parameter_owned_state(pool: &Pool) {
    pool.try_scope(|state| {
        state.store(1, Ordering::SeqCst);
    });
}

pub fn excused_trace_counter(pool: &Pool, xs: &[f64], spans: &AtomicUsize) {
    pool.par_map(xs, |x| {
        spans.fetch_add(1, Ordering::Relaxed); // lint: allow(L10): trace counter; monotonic and order-free
        x * 2.0
    });
}
