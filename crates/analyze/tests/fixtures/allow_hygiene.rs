//! A0/A1 fixture: the allowlist cannot rot. Scope: all rules.

/// A directive naming an unknown rule is malformed.
pub fn unknown_rule(xs: &[f64]) -> Option<f64> {
    // lint: allow(L99): no such rule //~ A0
    xs.first().copied()
}

/// The justification after the rule list is mandatory.
pub fn missing_justification(xs: &[f64]) -> Option<f64> {
    // lint: allow(L2) //~ A0
    xs.first().copied()
}

/// Something that says `lint:` but is not an allow directive.
pub fn not_an_allow(xs: &[f64]) -> Option<f64> {
    // lint: deny(L1): directives only support allow //~ A0
    xs.first().copied()
}

/// A directive that suppresses nothing is itself a finding.
pub fn unused_directive(xs: &[f64]) -> f64 {
    xs.first().copied().unwrap_or(0.0) // lint: allow(L2): nothing fires here //~ A1
}
