//! L3 fixture: a `pub fn` that can panic needs a `try_` twin or a Result
//! return. Scope: L1 + L3 (as in the real lib-crate scope, so that L1
//! allow directives are consumed the same way).

pub fn lonely(xs: &[f64]) -> f64 { //~ L3
    *xs.first().unwrap() //~ L1
}

pub fn twinned(xs: &[f64]) -> f64 {
    *xs.first().unwrap() //~ L1
}

pub fn try_twinned(xs: &[f64]) -> Option<f64> {
    xs.first().copied()
}

pub fn returns_result(xs: &[f64]) -> Result<f64, String> {
    Ok(*xs.first().unwrap()) //~ L1
}

pub fn excused_site_is_an_invariant(xs: &[f64]) -> f64 {
    // lint: allow(L1): documented precondition; xs is nonempty per # Panics
    *xs.first().unwrap()
}

pub fn infallible(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
