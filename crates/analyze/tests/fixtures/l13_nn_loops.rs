//! L13 fixture: per-timestep dense products inside loop bodies.
//!
//! A `.matvec()` or `.matmul()` in a recurrent loop re-walks the whole
//! weight matrix once per timestep; the batched forward paths hoist the
//! input-side products into one tiled `matmul_nt` / `matmul_batch` call
//! that is bitwise identical and several times faster. Only the exact
//! method names are flagged: `matmul_nt`, `matmul_tiled`, `matmul_batch`
//! and `matvec_transpose` ARE the batched replacements, and a product
//! outside any loop runs once by construction. Scope: L13 only.

use lgo_tensor::Matrix;

pub struct Cell {
    w_x: Matrix,
    w_h: Matrix,
}

impl Cell {
    /// The classic per-timestep forward: both products re-read the weights
    /// every iteration.
    pub fn forward_seq(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let mut h = vec![0.0; self.w_h.rows()];
        let mut out = Vec::new();
        for x in xs {
            let zx = self.w_x.matvec(x); //~ L13
            let zh = self.w_h.matvec(&h); //~ L13
            h = zx.iter().zip(&zh).map(|(a, b)| a + b).collect();
            out.push(h.clone());
        }
        out
    }

    /// While- and loop-bodies count the same as `for` bodies.
    pub fn drain(&self, stack: &mut Vec<Vec<f64>>) -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        while let Some(x) = stack.pop() {
            out.push(self.w_x.matvec(&x)); //~ L13
        }
        loop {
            if out.len() >= 4 {
                break;
            }
            out.push(self.w_h.matvec(out.last().unwrap())); //~ L13
        }
        out
    }

    /// A product inside a closure inside a loop still runs once per
    /// iteration.
    pub fn mapped(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        let mut acc = Vec::new();
        for x in xs {
            let s = Some(x).map(|v| self.w_x.matvec(v)).unwrap(); //~ L13
            acc.push(s[0]);
        }
        acc
    }

    /// The batched path: one input-side product outside the loop, and the
    /// unavoidable recurrent product goes through the tiled `matmul_nt` —
    /// neither is a violation.
    pub fn forward_batch(&self, xs: &Matrix) -> Matrix {
        let zx = xs.matmul_nt(&self.w_x);
        let mut h = Matrix::zeros(1, self.w_h.rows());
        for _t in 0..zx.rows() {
            h = h.matmul_nt(&self.w_h);
        }
        zx.matmul_tiled(&h.transpose())
    }

    /// Products outside any loop body are fine; so is a product in a loop
    /// *header* (it runs once to build the iterator).
    pub fn single(&self, x: &[f64]) -> Vec<f64> {
        let zx = self.w_x.matvec(x);
        for v in self.w_h.matvec(&zx).into_iter().take(2) {
            let _ = v;
        }
        zx
    }

    /// An excused site: warm-up runs once per restart, not per timestep.
    pub fn warmup(&self, xs: &[Vec<f64>]) {
        for x in xs.iter().take(1) {
            let _ = self.w_x.matvec(x); // lint: allow(L13): one-shot cache warm-up, loop runs a single probe
        }
    }
}

/// `impl Trait for Type` is not a loop header.
pub trait Product {
    fn apply(&self, m: &Matrix, x: &[f64]) -> Vec<f64>;
}

pub struct Plain;

impl Product for Plain {
    fn apply(&self, m: &Matrix, x: &[f64]) -> Vec<f64> {
        m.matvec(x)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn reference_loops_in_tests_are_masked() {
        let m = lgo_tensor::Matrix::zeros(2, 2);
        for _ in 0..2 {
            let _ = m.matvec(&[0.0, 0.0]);
        }
    }
}
