//! A fully conforming module: Result-based errors, totalOrder-based float
//! sorting, documented public API, panics confined to test code. Scope:
//! all rules; the analyzer must report nothing.

/// Error returned by [`safe_head`] on empty input.
#[derive(Debug, PartialEq, Eq)]
pub struct EmptyInput;

/// Returns the first element, or [`EmptyInput`] when `xs` is empty.
pub fn safe_head(xs: &[f64]) -> Result<f64, EmptyInput> {
    xs.first().copied().ok_or(EmptyInput)
}

/// Sorts ascending with NaN ordered deterministically (IEEE-754 totalOrder).
pub fn ranked(mut xs: Vec<f64>) -> Vec<f64> {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(safe_head(&[2.0]).unwrap(), 2.0);
        assert!((ranked(vec![1.0, 0.5])[0] - 0.5).abs() < 1e-12);
    }
}
