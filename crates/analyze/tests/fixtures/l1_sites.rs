//! L1 fixture: panic-family call sites in library code.
//!
//! Trailing tilde markers declare the findings the analyzer must report
//! for that line; see `tests/golden.rs`. Scope: L1 only.

pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap() //~ L1
}

pub fn second(xs: &[f64]) -> f64 {
    *xs.get(1).expect("len checked above") //~ L1
}

pub fn stop() -> ! {
    panic!("boom") //~ L1
}

pub fn switch(v: u8) -> u8 {
    match v {
        0 => 1,
        1 => todo!(), //~ L1
        2 => unimplemented!(), //~ L1
        _ => unreachable!(), //~ L1
    }
}

pub fn excused_trailing(xs: &[f64]) -> f64 {
    *xs.first().unwrap() // lint: allow(L1): caller guarantees nonempty input
}

pub fn excused_standalone(xs: &[f64]) -> f64 {
    // lint: allow(L1): caller guarantees nonempty input
    *xs.first().unwrap()
}

pub fn not_code() -> &'static str {
    "mentioning .unwrap() or panic! inside a string is fine"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_masked() {
        assert_eq!(*[1.0_f64].first().unwrap(), 1.0);
    }
}
