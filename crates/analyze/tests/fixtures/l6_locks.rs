//! L6 fixture: bare panics on synchronization-primitive results.
//!
//! A poisoned `Mutex`/`RwLock` or a panicked worker thread surfaces as an
//! `Err`, and a bare `.unwrap()` turns one task's failure into a process
//! abort. Scope: L6 only.

use std::sync::{Mutex, RwLock};
use std::thread::JoinHandle;

pub fn locked_count(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() //~ L6
}

pub fn read_value(l: &RwLock<f64>) -> f64 {
    *l.read().expect("lock poisoned") //~ L6
}

pub fn bump(l: &RwLock<f64>) {
    *l.write().unwrap() += 1.0; //~ L6
}

pub fn join_worker(handle: JoinHandle<u32>) -> u32 {
    handle.join().unwrap() //~ L6
}

pub fn recovered(m: &Mutex<u32>) -> u32 {
    // Poison recovery instead of a panic: the guard is still usable.
    *m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

pub fn excused(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap() // lint: allow(L6): fixture demonstrates the escape hatch
}

pub fn unrelated_unwrap(xs: &[u32]) -> u32 {
    // Plain Option unwrap is L1 territory, out of scope for this fixture.
    *xs.first().unwrap()
}

pub fn not_code() -> &'static str {
    "mentioning .lock().unwrap() inside a string is fine"
}
