//! L12 fixture: lock-order consistency. Any pair of lock keys acquired in
//! both orders — directly nested, or through a call made while a guard is
//! held — is a deadlock seed. Scope: l12 only.

use std::sync::Mutex;

pub struct Shared {
    a: Mutex<u64>,
    b: Mutex<u64>,
    c: Mutex<u64>,
    d: Mutex<u64>,
    e: Mutex<u64>,
    f: Mutex<u64>,
}

impl Shared {
    pub fn a_then_b(&self) -> u64 {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        *ga + *gb
    }

    pub fn b_then_a(&self) -> u64 {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap(); //~ L12
        *ga + *gb
    }

    fn with_d(&self) -> u64 {
        let gd = self.d.lock().unwrap();
        *gd
    }

    pub fn c_then_call_d(&self) -> u64 {
        let gc = self.c.lock().unwrap();
        *gc + self.with_d()
    }

    pub fn d_then_c(&self) -> u64 {
        let gd = self.d.lock().unwrap();
        let gc = self.c.lock().unwrap(); //~ L12
        *gd + *gc
    }

    pub fn consistent_pair(&self) -> u64 {
        let ge = self.e.lock().unwrap();
        let gf = self.f.lock().unwrap();
        *ge + *gf
    }

    pub fn consistent_pair_again(&self) -> u64 {
        let ge = self.e.lock().unwrap();
        let gf = self.f.lock().unwrap();
        *ge + *gf
    }

    pub fn excused_reversal(&self) -> u64 {
        let gf = self.f.lock().unwrap();
        // lint: allow(L12): shutdown path; all workers already parked
        let ge = self.e.lock().unwrap();
        *ge + *gf
    }
}
