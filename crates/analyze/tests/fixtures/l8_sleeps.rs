//! L8 fixture: sleep-based waits in library code.
//!
//! A `thread::sleep` in a library is either a disguised synchronization
//! primitive or a machine-dependent tuning hack; both hide stalls from the
//! serving stack's deadline/trace layers and break determinism. The rule
//! covers qualified `thread::sleep(..)` paths and bare imported `sleep(..)`
//! calls; methods named `.sleep()` and `fn sleep` definitions are different
//! animals. Scope: L8 only.

use std::thread::sleep;
use std::time::Duration;

pub fn polling_wait(ready: &std::sync::atomic::AtomicBool) {
    while !ready.load(std::sync::atomic::Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5)); //~ L8
    }
}

pub fn qualified_tail_path() {
    thread::sleep(Duration::from_millis(1)); //~ L8
}

pub fn imported_bare_call() {
    sleep(Duration::from_micros(50)); //~ L8
}

pub fn excused_backoff(attempt: u32) {
    std::thread::sleep(Duration::from_millis(1 << attempt)); // lint: allow(L8): bounded retry backoff, capped by the caller's deadline
}

pub struct Radio;

impl Radio {
    /// A domain method that happens to be called `sleep` is not a wait.
    pub fn sleep(&self) {}
}

pub fn method_named_sleep(radio: &Radio) {
    radio.sleep();
}

pub fn mentions_only() -> &'static str {
    "a string mentioning thread::sleep( is fine"
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn sleeps_in_tests_are_masked() {
        std::thread::sleep(Duration::from_millis(1));
    }
}
