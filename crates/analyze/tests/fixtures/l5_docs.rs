//! L5 fixture: every public item carries a doc comment. Scope: L5 only.

pub struct Undocumented; //~ L5

/// Documented.
pub struct Documented;

pub fn naked() {} //~ L5

/// Documented function.
pub fn covered() {}

/// Documentation above an attribute still counts.
#[derive(Clone)]
pub struct Attributed;

pub const LIMIT: usize = 10; //~ L5

/// Documented module.
pub mod inner {
    pub enum Kind { //~ L5
        A,
        B,
    }
}

pub(crate) fn crate_private_needs_no_docs() {}

pub use std::f64::consts::PI;
