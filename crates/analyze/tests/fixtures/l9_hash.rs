//! L9 (hash) fixture: hash-ordered containers in deterministic library
//! code — declarations and storage-order iteration. Scope: l9_hash only.

use std::collections::{BTreeMap, HashMap};
use std::collections::HashSet as Fast;

pub struct Cache { //~ L9
    ids: HashMap<u64, f64>,
}

pub struct Ordered {
    ids: BTreeMap<u64, f64>,
}

pub fn declares_annotated() -> usize {
    let seen: Fast<u64> = Fast::new(); //~ L9
    seen.len()
}

pub fn declares_inferred() -> usize {
    let m = HashMap::new(); //~ L9
    m.len()
}

pub fn declares_ordered() -> usize {
    let m: BTreeMap<u64, f64> = BTreeMap::new();
    m.len()
}

pub fn iterates_into_vec(m: &HashMap<u64, f64>) -> Vec<u64> {
    m.keys().copied().collect::<Vec<_>>() //~ L9
}

pub fn for_loop_over_hash(m: &HashMap<u64, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, v) in m { //~ L9
        acc += v;
    }
    acc
}

pub fn order_insensitive_reduction(m: &HashMap<u64, f64>) -> f64 {
    m.values().sum()
}

pub fn collects_into_keyed(m: &HashMap<u64, f64>) -> BTreeMap<u64, f64> {
    m.iter().map(|(k, v)| (*k, *v)).collect::<BTreeMap<_, _>>()
}

pub fn sorts_after_collect(m: &HashMap<u64, f64>) -> Vec<u64> {
    let mut ks: Vec<u64> = m.keys().copied().collect();
    ks.sort();
    ks
}

pub fn excused_iteration(m: &HashMap<u64, f64>) -> Vec<u64> {
    // lint: allow(L9): order re-established by the caller's sort
    m.keys().copied().collect::<Vec<_>>()
}
