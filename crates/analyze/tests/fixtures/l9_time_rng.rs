//! L9 (time/rng) fixture: wall-clock reads outside the timing seams, and
//! RNG construction not derived from `lgo_runtime::split_seed`. Scope:
//! l9_time + l9_rng.

pub fn wall_clock_elapsed() -> f64 {
    let t0 = std::time::Instant::now(); //~ L9
    t0.elapsed().as_secs_f64()
}

pub fn unix_stamp() -> u64 {
    std::time::SystemTime::now() //~ L9
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn fn_pointer_form(flag: bool) -> bool {
    flag.then(std::time::Instant::now).is_some() //~ L9
}

pub fn entropy_rng() -> u64 {
    let mut rng = rand::thread_rng(); //~ L9
    rng.next_u64()
}

pub fn from_entropy_rng() -> u64 {
    let mut rng = SmallRng::from_entropy(); //~ L9
    rng.next_u64()
}

pub fn constant_seed() -> u64 {
    let mut rng = StdRng::seed_from_u64(42); //~ L9
    rng.next_u64()
}

pub fn derived_seed(base: u64, task: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(lgo_runtime::split_seed(base, task));
    rng.next_u64()
}

pub fn excused_entropy() -> u64 {
    // lint: allow(L9): backoff jitter only; never touches exported data
    let mut rng = rand::thread_rng();
    rng.next_u64()
}
