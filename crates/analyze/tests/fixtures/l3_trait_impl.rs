//! L3 fixture: trait-impl methods of workspace-defined `pub` traits are
//! public API surface too — a panicking impl needs a `try_` twin just like
//! a free `pub fn`. Scope: L1 + L3.

/// A workspace-defined scoring trait: impls can grow `try_` twins.
pub trait Score {
    fn score(&self, xs: &[f64]) -> f64;
}

/// A second workspace trait, used for the twinned case.
pub trait Rank {
    fn rank(&self, xs: &[f64]) -> f64;
}

/// A private trait: its impls are not public API.
trait Hidden {
    fn hidden(&self, xs: &[f64]) -> f64;
}

pub struct Risky;

impl Score for Risky {
    fn score(&self, xs: &[f64]) -> f64 { //~ L3
        *xs.first().unwrap() //~ L1
    }
}

impl Rank for Risky {
    fn rank(&self, xs: &[f64]) -> f64 {
        *xs.first().unwrap() //~ L1
    }
}

impl Risky {
    /// The twin that excuses `Rank::rank` above.
    pub fn try_rank(&self, xs: &[f64]) -> Option<f64> {
        xs.first().copied()
    }
}

impl Hidden for Risky {
    fn hidden(&self, xs: &[f64]) -> f64 {
        *xs.first().unwrap() //~ L1
    }
}

pub struct Careful;

impl Score for Careful {
    fn score(&self, xs: &[f64]) -> f64 {
        xs.iter().sum()
    }
}
