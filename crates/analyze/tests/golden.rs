//! Golden-file tests for the lint engine.
//!
//! Each fixture under `tests/fixtures/` is a plain Rust source file (never
//! compiled) that declares its own expected findings with trailing
//! `//~ <RULE>` markers, compiletest-style. The harness lexes and analyzes
//! the fixture text, then diffs the `(line, rule)` set against the markers,
//! so a fixture documents the analyzer's exact behaviour line by line.

use lgo_analyze::{analyze_source, FileScope};

/// `(line, rule)` pairs declared by `//~` markers in the fixture text.
fn expected_findings(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((idx + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn check_fixture(name: &str, scope: FileScope) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    let mut found: Vec<(usize, String)> = analyze_source(name, &src, scope)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    found.sort();
    assert_eq!(
        found,
        expected_findings(&src),
        "fixture {name}: analyzer findings (left) disagree with //~ markers (right)"
    );
}

#[test]
fn l1_panic_sites() {
    check_fixture("l1_sites.rs", FileScope { l1: true, ..FileScope::none() });
}

#[test]
fn l2_float_ordering() {
    check_fixture("l2_float_order.rs", FileScope { l2: true, ..FileScope::none() });
}

#[test]
fn l3_try_twins() {
    // L1 + L3 together, as in the real lib-crate scope, so that allow(L1)
    // directives are consumed exactly like they are in the workspace.
    check_fixture("l3_twins.rs", FileScope { l1: true, l3: true, ..FileScope::none() });
}

#[test]
fn l3_trait_impl_methods() {
    // Trait-impl methods of workspace-defined pub traits are public API
    // surface too: a panicking impl of a pub trait needs a try_ twin just
    // like a free pub fn. (The old token engine only saw `pub fn`.)
    check_fixture("l3_trait_impl.rs", FileScope { l1: true, l3: true, ..FileScope::none() });
}

#[test]
fn l4_float_literal_equality() {
    check_fixture("l4_float_eq.rs", FileScope { l4: true, ..FileScope::none() });
}

#[test]
fn l5_missing_docs() {
    check_fixture("l5_docs.rs", FileScope { l5: true, ..FileScope::none() });
}

#[test]
fn l6_lock_results() {
    check_fixture("l6_locks.rs", FileScope { l6: true, ..FileScope::none() });
}

#[test]
fn l7_library_prints() {
    check_fixture("l7_prints.rs", FileScope { l7: true, ..FileScope::none() });
}

#[test]
fn l8_thread_sleeps() {
    check_fixture("l8_sleeps.rs", FileScope { l8: true, ..FileScope::none() });
}

#[test]
fn l9_hash_containers() {
    check_fixture("l9_hash.rs", FileScope { l9_hash: true, ..FileScope::none() });
}

#[test]
fn l9_time_and_rng() {
    check_fixture(
        "l9_time_rng.rs",
        FileScope { l9_time: true, l9_rng: true, ..FileScope::none() },
    );
}

#[test]
fn l10_parallel_closures() {
    check_fixture("l10_par_closures.rs", FileScope { l10: true, ..FileScope::none() });
}

#[test]
fn l11_panic_reachability() {
    check_fixture("l11_panic_reach.rs", FileScope { l11: true, ..FileScope::none() });
}

#[test]
fn l12_lock_order() {
    check_fixture("l12_lock_order.rs", FileScope { l12: true, ..FileScope::none() });
}

#[test]
fn l13_nn_loop_products() {
    check_fixture("l13_nn_loops.rs", FileScope { l13: true, ..FileScope::none() });
}

#[test]
fn allowlist_hygiene() {
    check_fixture("allow_hygiene.rs", FileScope::all());
}

#[test]
fn clean_file_reports_nothing() {
    check_fixture("clean.rs", FileScope::all());
}

#[test]
fn fixture_trees_are_out_of_scope() {
    assert_eq!(
        FileScope::for_path("crates/analyze/tests/fixtures/l1_sites.rs"),
        None
    );
    assert_eq!(FileScope::for_path("vendor/rand/src/lib.rs"), None);
}

#[test]
fn workspace_path_scoping() {
    let core = FileScope::for_path("crates/core/src/risk.rs").unwrap();
    assert!(core.l1 && core.l3 && core.l5);
    let bench_bin = FileScope::for_path("crates/bench/src/bin/exp_fig4.rs").unwrap();
    assert!(!bench_bin.l1 && bench_bin.l2 && bench_bin.l4 && !bench_bin.l5);
    let test_file = FileScope::for_path("crates/detect/tests/integration.rs").unwrap();
    assert!(!test_file.l1 && !test_file.l2 && !test_file.l4 && !test_file.l6);
    // lgo-runtime owns the synchronization internals, so L6 is off there
    // but on everywhere else outside test trees.
    let runtime = FileScope::for_path("crates/runtime/src/pool.rs").unwrap();
    assert!(!runtime.l6);
    assert!(core.l6);
    // L7 covers library sources everywhere except the two presentation
    // crates; binaries, tests and benches stay free to print.
    assert!(core.l7 && runtime.l7);
    assert!(FileScope::for_path("crates/trace/src/lib.rs").unwrap().l7);
    assert!(!bench_bin.l7);
    assert!(!test_file.l7);
    assert!(!FileScope::for_path("crates/bench/src/lib.rs").unwrap().l7);
    assert!(!FileScope::for_path("crates/analyze/src/rules.rs").unwrap().l7);
    assert!(!FileScope::for_path("crates/trace/src/bin/trace_schema.rs").unwrap().l7);
    // L8 exempts the two crates that legitimately own timing — the runtime
    // pool and the serving stack's watchdog/backoff — and, as with every
    // rule, binaries and test trees.
    assert!(core.l8);
    assert!(FileScope::for_path("crates/detect/src/madgan.rs").unwrap().l8);
    assert!(!runtime.l8);
    assert!(!FileScope::for_path("crates/serve/src/watchdog.rs").unwrap().l8);
    assert!(!bench_bin.l8);
    assert!(!test_file.l8);
    // L9's three sub-checks: hash-order and RNG discipline hold across all
    // library code; wall-clock reads are legitimate only inside the
    // runtime/trace/serve timing seams.
    assert!(core.l9_hash && core.l9_time && core.l9_rng);
    assert!(runtime.l9_hash && runtime.l9_rng);
    assert!(!runtime.l9_time);
    assert!(!FileScope::for_path("crates/trace/src/lib.rs").unwrap().l9_time);
    assert!(!FileScope::for_path("crates/serve/src/inject.rs").unwrap().l9_time);
    assert!(!bench_bin.l9_hash && !bench_bin.l9_time && !bench_bin.l9_rng);
    assert!(!test_file.l9_hash);
    // L10 follows L2/L4: everywhere outside test trees (bins included —
    // a schedule-dependent experiment binary is just as wrong).
    assert!(core.l10 && runtime.l10 && bench_bin.l10);
    assert!(!test_file.l10);
    // L11 shares L3's scope: the defense-crate public API.
    assert!(core.l11);
    assert!(!runtime.l11 && !bench_bin.l11 && !test_file.l11);
    // L12 is owned by the two lock-holding crates.
    assert!(runtime.l12);
    assert!(FileScope::for_path("crates/serve/src/watchdog.rs").unwrap().l12);
    assert!(!core.l12);
    assert!(!FileScope::for_path("crates/runtime/tests/pool.rs").unwrap().l12);
    // L13 is owned by the recurrent-cell crate: nn library sources only.
    assert!(FileScope::for_path("crates/nn/src/lstm.rs").unwrap().l13);
    assert!(!core.l13);
    assert!(!FileScope::for_path("crates/tensor/src/block.rs").unwrap().l13);
    assert!(!FileScope::for_path("crates/nn/tests/lstm_golden.rs").unwrap().l13);
}

/// The whole point of the crate: the workspace itself stays lint-clean.
/// This pins the invariant into `cargo test` as well as `scripts/check.sh`.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate dir has a workspace root two levels up")
        .to_path_buf();
    let findings = lgo_analyze::analyze_workspace(&root).expect("workspace walk");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
