//! Golden-file tests for the lint engine.
//!
//! Each fixture under `tests/fixtures/` is a plain Rust source file (never
//! compiled) that declares its own expected findings with trailing
//! `//~ <RULE>` markers, compiletest-style. The harness lexes and analyzes
//! the fixture text, then diffs the `(line, rule)` set against the markers,
//! so a fixture documents the analyzer's exact behaviour line by line.

use lgo_analyze::{analyze_source, FileScope};

#[allow(clippy::too_many_arguments)]
fn scope(
    l1: bool,
    l2: bool,
    l3: bool,
    l4: bool,
    l5: bool,
    l6: bool,
    l7: bool,
    l8: bool,
) -> FileScope {
    FileScope { l1, l2, l3, l4, l5, l6, l7, l8 }
}

/// `(line, rule)` pairs declared by `//~` markers in the fixture text.
fn expected_findings(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(pos) = line.find("//~") {
            for rule in line[pos + 3..].split_whitespace() {
                out.push((idx + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn check_fixture(name: &str, scope: FileScope) {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {name}: {e}"));
    let mut found: Vec<(usize, String)> = analyze_source(name, &src, scope)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    found.sort();
    assert_eq!(
        found,
        expected_findings(&src),
        "fixture {name}: analyzer findings (left) disagree with //~ markers (right)"
    );
}

#[test]
fn l1_panic_sites() {
    check_fixture("l1_sites.rs", scope(true, false, false, false, false, false, false, false));
}

#[test]
fn l2_float_ordering() {
    check_fixture("l2_float_order.rs", scope(false, true, false, false, false, false, false, false));
}

#[test]
fn l3_try_twins() {
    // L1 + L3 together, as in the real lib-crate scope, so that allow(L1)
    // directives are consumed exactly like they are in the workspace.
    check_fixture("l3_twins.rs", scope(true, false, true, false, false, false, false, false));
}

#[test]
fn l4_float_literal_equality() {
    check_fixture("l4_float_eq.rs", scope(false, false, false, true, false, false, false, false));
}

#[test]
fn l5_missing_docs() {
    check_fixture("l5_docs.rs", scope(false, false, false, false, true, false, false, false));
}

#[test]
fn l6_lock_results() {
    check_fixture("l6_locks.rs", scope(false, false, false, false, false, true, false, false));
}

#[test]
fn l7_library_prints() {
    check_fixture("l7_prints.rs", scope(false, false, false, false, false, false, true, false));
}

#[test]
fn l8_thread_sleeps() {
    check_fixture("l8_sleeps.rs", scope(false, false, false, false, false, false, false, true));
}

#[test]
fn allowlist_hygiene() {
    check_fixture("allow_hygiene.rs", FileScope::all());
}

#[test]
fn clean_file_reports_nothing() {
    check_fixture("clean.rs", FileScope::all());
}

#[test]
fn fixture_trees_are_out_of_scope() {
    assert_eq!(
        FileScope::for_path("crates/analyze/tests/fixtures/l1_sites.rs"),
        None
    );
    assert_eq!(FileScope::for_path("vendor/rand/src/lib.rs"), None);
}

#[test]
fn workspace_path_scoping() {
    let core = FileScope::for_path("crates/core/src/risk.rs").unwrap();
    assert!(core.l1 && core.l3 && core.l5);
    let bench_bin = FileScope::for_path("crates/bench/src/bin/exp_fig4.rs").unwrap();
    assert!(!bench_bin.l1 && bench_bin.l2 && bench_bin.l4 && !bench_bin.l5);
    let test_file = FileScope::for_path("crates/detect/tests/integration.rs").unwrap();
    assert!(!test_file.l1 && !test_file.l2 && !test_file.l4 && !test_file.l6);
    // lgo-runtime owns the synchronization internals, so L6 is off there
    // but on everywhere else outside test trees.
    let runtime = FileScope::for_path("crates/runtime/src/pool.rs").unwrap();
    assert!(!runtime.l6);
    assert!(core.l6);
    // L7 covers library sources everywhere except the two presentation
    // crates; binaries, tests and benches stay free to print.
    assert!(core.l7 && runtime.l7);
    assert!(FileScope::for_path("crates/trace/src/lib.rs").unwrap().l7);
    assert!(!bench_bin.l7);
    assert!(!test_file.l7);
    assert!(!FileScope::for_path("crates/bench/src/lib.rs").unwrap().l7);
    assert!(!FileScope::for_path("crates/analyze/src/rules.rs").unwrap().l7);
    assert!(!FileScope::for_path("crates/trace/src/bin/trace_schema.rs").unwrap().l7);
    // L8 exempts the two crates that legitimately own timing — the runtime
    // pool and the serving stack's watchdog/backoff — and, as with every
    // rule, binaries and test trees.
    assert!(core.l8);
    assert!(FileScope::for_path("crates/detect/src/madgan.rs").unwrap().l8);
    assert!(!runtime.l8);
    assert!(!FileScope::for_path("crates/serve/src/watchdog.rs").unwrap().l8);
    assert!(!bench_bin.l8);
    assert!(!test_file.l8);
}

/// The whole point of the crate: the workspace itself stays lint-clean.
/// This pins the invariant into `cargo test` as well as `scripts/check.sh`.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate dir has a workspace root two levels up")
        .to_path_buf();
    let findings = lgo_analyze::analyze_workspace(&root).expect("workspace walk");
    let rendered: Vec<String> = findings.iter().map(|f| f.render()).collect();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
}
