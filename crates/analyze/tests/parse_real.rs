//! Parser smoke tests over real workspace sources. Fixtures prove the
//! rules' behaviour on synthetic shapes; these prove the parser stays
//! total and structurally accurate on the gnarliest files the analyzer
//! actually has to survive — the runtime's work-stealing pool (unsafe
//! impls, `thread::Builder` closures, guard chains) and the trace layer
//! (cfg-gated sibling modules, statics, `OnceLock` registries).

use lgo_analyze::ast::{ItemKind, Node, Vis};
use lgo_analyze::lexer::tokenize;
use lgo_analyze::parser::parse_file;

fn workspace_file(rel: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root two levels up")
        .join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {rel}: {e}"))
}

#[test]
fn pool_rs_parses_structurally() {
    let src = workspace_file("crates/runtime/src/pool.rs");
    let toks = tokenize(&src);
    let (file, cur) = parse_file(&toks);

    // The item tree sees the impl blocks, including `unsafe impl Send`.
    let impls: Vec<&str> = file
        .items
        .iter()
        .filter_map(|i| match &i.kind {
            ItemKind::Impl(im) => Some(im.self_ty.as_str()),
            _ => None,
        })
        .collect();
    assert!(impls.contains(&"Pool"), "impl Pool not found: {impls:?}");
    assert!(impls.contains(&"Shared"));
    assert!(impls.iter().filter(|t| **t == "TaskRef").count() >= 2, "unsafe impl Send/Sync");

    let fns = file.all_fns();
    // Free fns and methods both land, with bodies and visibility intact.
    let threads = fns
        .iter()
        .find(|(im, f)| im.is_none() && f.name == "threads")
        .expect("free fn threads()");
    assert_eq!(threads.1.vis, Vis::Pub);
    assert!(threads.1.body.is_some());
    let lock_state = fns
        .iter()
        .find(|(im, f)| im.is_some_and(|i| i.self_ty == "Shared") && f.name == "lock_state")
        .expect("Shared::lock_state");
    assert_eq!(lock_state.1.vis, Vis::Private);

    // Every body's node spans stay inside that body — the containment
    // queries the rules run on would silently misfire otherwise.
    for (_, f) in &fns {
        if let Some(body) = &f.body {
            assert!(body.span.end < cur.n());
            for node in &body.nodes {
                let s = node.span();
                assert!(
                    s.end <= body.span.end && s.start >= body.span.start,
                    "node span {s:?} escapes body {:?} in fn {}",
                    body.span,
                    f.name
                );
            }
        }
    }

    // The pool's guard chain is visible to the lock analysis: a method
    // call of `lock` with receiver evidence inside lock_state's body.
    let body = lock_state.1.body.as_ref().expect("lock_state has a body");
    assert!(
        body.nodes.iter().any(|n| matches!(
            n,
            Node::MethodCall { recv, name, .. } if name == "lock" && recv.contains("state")
        )),
        "lock() call on self.state not extracted"
    );
}

#[test]
fn trace_lib_rs_parses_structurally() {
    let src = workspace_file("crates/trace/src/lib.rs");
    let toks = tokenize(&src);
    let (file, cur) = parse_file(&toks);
    let fns = file.all_fns();

    // Both cfg-gated sibling modules define span(); the parser keeps every
    // copy (cfg evaluation is the compiler's job, not the linter's).
    let spans = fns.iter().filter(|(_, f)| f.name == "span").count();
    assert!(spans >= 3, "expected span() in both cfg modules + re-export, got {spans}");

    // `counter` exists and takes its documented signature.
    let counter = fns
        .iter()
        .find(|(_, f)| f.name == "counter" && f.params.contains("delta"))
        .expect("counter(name, delta)");
    assert!(counter.1.params.contains("name"));

    // Macro invocations and closures inside bodies are extracted.
    let all_nodes: Vec<&Node> = fns
        .iter()
        .filter_map(|(_, f)| f.body.as_ref())
        .flat_map(|b| b.nodes.iter())
        .collect();
    assert!(all_nodes.iter().any(|n| matches!(n, Node::Closure { .. })));
    assert!(all_nodes.iter().any(|n| matches!(n, Node::Let { name, .. } if name == "guard")));

    // Line numbers survive the sig-index round trip: every extracted node
    // lies within the file.
    let last_line = src.lines().count();
    for n in &all_nodes {
        assert!(n.line() >= 1 && n.line() <= last_line);
    }
    assert!(cur.n() > 100, "trace lib should tokenize to a real stream");
}
