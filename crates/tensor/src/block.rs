//! Blocked/tiled matrix kernels for the workspace's hot paths.
//!
//! [`Matrix::try_matmul`] is an i-k-j loop with a sparsity skip — the right
//! shape for the tiny matrices the optimizers touch, but not for the batched
//! gate products the sequence models need (many rows against one shared
//! weight matrix) or the OC-SVM Gram matrix (every row against every row).
//! This module adds three kernels tuned for those shapes:
//!
//! * [`Matrix::matmul_nt`] — `A · Bᵀ` with `Bᵀ` *already stored row-major*,
//!   so both operands stream sequentially. The nn gate weights `(out × in)`
//!   are exactly this layout: no packing copy is ever needed for them.
//! * [`PackedRhs`] + [`Matrix::matmul_tiled`] — general `A · B` through a
//!   packed transpose of `B`, paying the transpose once.
//! * [`Matrix::matmul_batch`] — many left-hand sides against one shared
//!   right-hand side, amortizing the packing across the whole batch.
//!
//! # Determinism contract
//!
//! Every kernel here computes each output element as the *ascending-k dot
//! product* `Σₖ a[i][k]·b[k][j]` with left-to-right float accumulation —
//! the exact op sequence of [`Matrix::matvec`] and [`crate::vector::dot`].
//! Tiling only reorders **which elements** are computed when, never the
//! additions *within* an element, so results are bit-for-bit identical to
//! the unblocked loops at any tile size. The k dimension is deliberately
//! never split: splitting it would change accumulation order and break the
//! workspace's byte-identical-export guarantee.

use crate::error::ShapeError;
use crate::matrix::Matrix;

/// Square tile edge for the i/j blocking. 32×32 output tiles keep one RHS
/// row pack (32 rows × k) resident in L1/L2 while 32 LHS rows stream over
/// it. The value only affects speed, never results — see the module-level
/// determinism contract.
const TILE: usize = 32;

/// A right-hand side packed as its transpose, row-major, so that every
/// column of the original matrix is a contiguous slice. Pay the transpose
/// once, then run any number of [`Matrix::matmul_tiled`] /
/// [`Matrix::matmul_batch`] products against it.
///
/// # Examples
///
/// ```
/// use lgo_tensor::{Matrix, PackedRhs};
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
/// let packed = PackedRhs::pack(&b);
/// assert_eq!(a.matmul_tiled(&packed), a.matmul(&b));
/// ```
#[derive(Debug, Clone)]
pub struct PackedRhs {
    /// `rhs.transpose()`: row `j` holds column `j` of the original matrix.
    t: Matrix,
}

impl PackedRhs {
    /// Packs `rhs` by materializing its transpose.
    pub fn pack(rhs: &Matrix) -> Self {
        Self { t: rhs.transpose() }
    }

    /// Shape of the *original* (unpacked) right-hand side.
    pub fn shape(&self) -> (usize, usize) {
        (self.t.cols(), self.t.rows())
    }

    /// The packed transpose itself (row `j` = original column `j`).
    pub fn transposed(&self) -> &Matrix {
        &self.t
    }
}

impl Matrix {
    /// `self · rhs_tᵀ` where `rhs_t` is the right-hand side stored
    /// transposed (row `j` of `rhs_t` is column `j` of the product's RHS).
    ///
    /// This is the natural layout for two hot paths: nn gate weights are
    /// stored `(out × in)`, so `X · Wᵀ` batches a stack of `matvec` calls
    /// without any packing; and a Gram matrix is `P · Pᵀ`, i.e. the matrix
    /// against itself. Row `i` of the result equals `rhs_t.matvec(row i)`
    /// bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs_t.cols()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lgo_tensor::Matrix;
    ///
    /// let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let w = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 2.0]]);
    /// let z = x.matmul_nt(&w); // == x · wᵀ, shape (2, 3)
    /// assert_eq!(z.row(0), &[1.0, 3.0, 4.0]);
    /// assert_eq!(z.row(1), w.matvec(x.row(1)).as_slice());
    /// ```
    pub fn matmul_nt(&self, rhs_t: &Matrix) -> Matrix {
        self.try_matmul_nt(rhs_t)
            // lint: allow(L1): documented panicking wrapper; try_matmul_nt is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`Self::matmul_nt`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs_t.cols()`.
    pub fn try_matmul_nt(&self, rhs_t: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols() != rhs_t.cols() {
            return Err(ShapeError::new("matmul_nt", self.shape(), rhs_t.shape()));
        }
        crate::sanitize::check_finite(self.as_slice(), "matmul_nt lhs");
        crate::sanitize::check_finite(rhs_t.as_slice(), "matmul_nt rhs");
        let (m, n) = (self.rows(), rhs_t.rows());
        let mut out = Matrix::zeros(m, n);
        // i/j tiling only: each output element is one self-contained
        // ascending-k dot, so the tile walk order cannot change any value.
        //
        // Within a tile row, four output columns run interleaved: one pass
        // over `arow` feeds four *independent* accumulators. A lone dot
        // product is latency-bound — FP addition must stay a serial chain
        // because reassociation would change the rounding — so interleaving
        // chains is how this kernel beats a matvec loop without touching a
        // single output bit (each accumulator still sums its own products
        // in ascending k from 0.0, exactly like the 1-wide form).
        let mut i0 = 0;
        while i0 < m {
            let i1 = (i0 + TILE).min(m);
            let mut j0 = 0;
            while j0 < n {
                let j1 = (j0 + TILE).min(n);
                for i in i0..i1 {
                    let arow = self.row(i);
                    let orow = out.row_mut(i);
                    let mut j = j0;
                    while j + 4 <= j1 {
                        let b0 = rhs_t.row(j);
                        let b1 = rhs_t.row(j + 1);
                        let b2 = rhs_t.row(j + 2);
                        let b3 = rhs_t.row(j + 3);
                        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                        for ((((&a, &x0), &x1), &x2), &x3) in
                            arow.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                        {
                            s0 += a * x0;
                            s1 += a * x1;
                            s2 += a * x2;
                            s3 += a * x3;
                        }
                        orow[j] = s0;
                        orow[j + 1] = s1;
                        orow[j + 2] = s2;
                        orow[j + 3] = s3;
                        j += 4;
                    }
                    while j < j1 {
                        let brow = rhs_t.row(j);
                        orow[j] = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                        j += 1;
                    }
                }
                j0 = j1;
            }
            i0 = i1;
        }
        Ok(out)
    }

    /// Tiled matrix product `self · rhs` through a pre-packed transpose.
    ///
    /// Results agree with [`Self::matmul`] to within float associativity
    /// (and bit-for-bit with [`Self::matvec`] applied column by column);
    /// use this when the same RHS is multiplied repeatedly, paying
    /// [`PackedRhs::pack`] once.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols()` differs from the packed RHS's row count.
    pub fn matmul_tiled(&self, packed: &PackedRhs) -> Matrix {
        self.try_matmul_tiled(packed)
            // lint: allow(L1): documented panicking wrapper; try_matmul_tiled is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`Self::matmul_tiled`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols()` differs from the packed
    /// RHS's row count.
    pub fn try_matmul_tiled(&self, packed: &PackedRhs) -> Result<Matrix, ShapeError> {
        if self.cols() != packed.shape().0 {
            return Err(ShapeError::new("matmul_tiled", self.shape(), packed.shape()));
        }
        self.try_matmul_nt(&packed.t)
    }

    /// Symmetric self-product `self · selfᵀ`: only the upper triangle is
    /// computed, the lower comes by mirroring. Bit-identical to
    /// `self.matmul_nt(self)` in every entry — IEEE multiplication is
    /// commutative, so the ascending-k dot of rows `(i, j)` and `(j, i)`
    /// runs the exact same operation sequence and the mirror *is* the
    /// value the full product would have computed — at roughly half the
    /// work. This is the Gram-matrix kernel: `n` rows of features against
    /// themselves.
    ///
    /// # Examples
    ///
    /// ```
    /// use lgo_tensor::Matrix;
    ///
    /// let p = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
    /// assert_eq!(p.syrk_nt(), p.matmul_nt(&p));
    /// ```
    pub fn syrk_nt(&self) -> Matrix {
        crate::sanitize::check_finite(self.as_slice(), "syrk_nt");
        let m = self.rows();
        let mut out = Matrix::zeros(m, m);
        // Tile walk restricted to j0 >= i0; the same interleaved 4-wide
        // accumulators as `try_matmul_nt` (see there for why interleaving
        // cannot move a bit), with each dot written to both (i, j) and
        // (j, i).
        let mut i0 = 0;
        while i0 < m {
            let i1 = (i0 + TILE).min(m);
            let mut j0 = i0;
            while j0 < m {
                let j1 = (j0 + TILE).min(m);
                for i in i0..i1 {
                    let mut j = j0.max(i);
                    while j + 4 <= j1 {
                        let arow = self.row(i);
                        let b0 = self.row(j);
                        let b1 = self.row(j + 1);
                        let b2 = self.row(j + 2);
                        let b3 = self.row(j + 3);
                        let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                        for ((((&a, &x0), &x1), &x2), &x3) in
                            arow.iter().zip(b0).zip(b1).zip(b2).zip(b3)
                        {
                            s0 += a * x0;
                            s1 += a * x1;
                            s2 += a * x2;
                            s3 += a * x3;
                        }
                        let o = out.as_mut_slice();
                        o[i * m + j] = s0;
                        o[i * m + j + 1] = s1;
                        o[i * m + j + 2] = s2;
                        o[i * m + j + 3] = s3;
                        o[j * m + i] = s0;
                        o[(j + 1) * m + i] = s1;
                        o[(j + 2) * m + i] = s2;
                        o[(j + 3) * m + i] = s3;
                        j += 4;
                    }
                    while j < j1 {
                        let arow = self.row(i);
                        let brow = self.row(j);
                        let v = arow.iter().zip(brow).map(|(&a, &b)| a * b).sum();
                        let o = out.as_mut_slice();
                        o[i * m + j] = v;
                        o[j * m + i] = v;
                        j += 1;
                    }
                }
                j0 = j1;
            }
            i0 = i1;
        }
        out
    }

    /// Batched product: every matrix in `lhs_batch` against one shared
    /// `rhs`, packing `rhs` exactly once. Returns one product per LHS, in
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any LHS has `cols() != rhs.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use lgo_tensor::Matrix;
    ///
    /// let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
    /// let xs = vec![Matrix::identity(2), Matrix::filled(3, 2, 1.0)];
    /// let zs = Matrix::matmul_batch(&xs, &w);
    /// assert_eq!(zs[0], w);
    /// assert_eq!(zs[1].row(2), &[4.0, 6.0]);
    /// ```
    pub fn matmul_batch(lhs_batch: &[Matrix], rhs: &Matrix) -> Vec<Matrix> {
        Self::try_matmul_batch(lhs_batch, rhs)
            // lint: allow(L1): documented panicking wrapper; try_matmul_batch is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked [`Self::matmul_batch`].
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] on the first LHS whose `cols()` differs from
    /// `rhs.rows()`.
    pub fn try_matmul_batch(lhs_batch: &[Matrix], rhs: &Matrix) -> Result<Vec<Matrix>, ShapeError> {
        let packed = PackedRhs::pack(rhs);
        lhs_batch
            .iter()
            .map(|lhs| lhs.try_matmul_tiled(&packed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::uniform(rows, cols, &mut rng, -2.0, 2.0)
    }

    #[test]
    fn matmul_nt_rows_are_bitwise_matvec() {
        // The determinism contract: row i of A·Bᵀ must be exactly
        // Bᵀ-as-weights applied to row i, same bits.
        let a = random(67, 19, 1);
        let w = random(41, 19, 2);
        let z = a.matmul_nt(&w);
        for i in 0..a.rows() {
            let reference = w.matvec(a.row(i));
            for (got, want) in z.row(i).iter().zip(&reference) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn syrk_matches_full_product_bitwise() {
        // Sizes straddling tile edges, including the 4-wide remainder and
        // the diagonal-start columns inside a tile.
        for &(m, k) in &[(1, 1), (5, 3), (31, 8), (32, 32), (33, 17), (70, 4), (97, 9)] {
            let p = random(m, k, m as u64 * 31 + k as u64);
            let full = p.matmul_nt(&p);
            let syrk = p.syrk_nt();
            for (a, b) in full.as_slice().iter().zip(syrk.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "syrk diverged at {m}x{k}");
            }
        }
    }

    #[test]
    fn tiled_matches_naive_matmul() {
        // Sizes straddling the tile edge on both dimensions.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (32, 7, 32), (33, 40, 65), (70, 3, 31)] {
            let a = random(m, k, m as u64 * 1000 + n as u64);
            let b = random(k, n, k as u64);
            let tiled = a.matmul_tiled(&PackedRhs::pack(&b));
            let naive = a.matmul(&b);
            assert_eq!(tiled.shape(), naive.shape());
            for (x, y) in tiled.as_slice().iter().zip(naive.as_slice()) {
                assert!((x - y).abs() <= 1e-12, "tiled {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn batch_packs_once_and_matches_per_matrix_products() {
        let rhs = random(13, 9, 5);
        let batch: Vec<Matrix> = (0..4).map(|i| random(10 + i, 13, 50 + i as u64)).collect();
        let products = Matrix::matmul_batch(&batch, &rhs);
        assert_eq!(products.len(), batch.len());
        let packed = PackedRhs::pack(&rhs);
        for (lhs, got) in batch.iter().zip(&products) {
            assert_eq!(got, &lhs.matmul_tiled(&packed));
        }
    }

    #[test]
    fn packed_rhs_reports_original_shape() {
        let b = random(6, 11, 9);
        let p = PackedRhs::pack(&b);
        assert_eq!(p.shape(), (6, 11));
        assert_eq!(p.transposed().shape(), (11, 6));
    }

    #[test]
    fn shape_errors_are_checked() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(a.try_matmul_nt(&Matrix::zeros(4, 2)).unwrap_err().op(), "matmul_nt");
        let p = PackedRhs::pack(&Matrix::zeros(4, 2));
        assert_eq!(a.try_matmul_tiled(&p).unwrap_err().op(), "matmul_tiled");
        assert!(Matrix::try_matmul_batch(&[a], &Matrix::zeros(4, 2)).is_err());
    }

    #[test]
    #[should_panic(expected = "matmul_nt")]
    fn matmul_nt_panics_on_mismatch() {
        let _ = Matrix::zeros(2, 3).matmul_nt(&Matrix::zeros(2, 4));
    }
}
