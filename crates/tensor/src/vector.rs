//! Free functions over `&[f64]` slices.
//!
//! Vectors in `lgo` are plain slices; these helpers implement the inner
//! products, norms and distances used across the neural-network library, the
//! anomaly detectors (Minkowski metric for kNN) and the clustering code.

/// Dot product of two equally long slices.
///
/// # Panics
///
/// Panics if the lengths differ.
///
/// # Examples
///
/// ```
/// assert_eq!(lgo_tensor::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// In-place `a += b * k`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: &mut [f64], b: &[f64], k: f64) {
    assert_eq!(a.len(), b.len(), "axpy: length mismatch {} vs {}", a.len(), b.len());
    for (x, &y) in a.iter_mut().zip(b) {
        *x += y * k;
    }
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    minkowski(a, b, 2.0)
}

/// Manhattan (L1) distance between two points.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    minkowski(a, b, 1.0)
}

/// Minkowski distance of order `p` — the metric used by the paper's kNN
/// detector with `p = 2` (scikit-learn's default).
///
/// `p = infinity` yields the Chebyshev distance.
///
/// # Panics
///
/// Panics if the lengths differ or `p < 1`.
///
/// # Examples
///
/// ```
/// let d = lgo_tensor::vector::minkowski(&[0.0, 0.0], &[3.0, 4.0], 2.0);
/// assert_eq!(d, 5.0);
/// ```
pub fn minkowski(a: &[f64], b: &[f64], p: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "minkowski: length mismatch {} vs {}", a.len(), b.len());
    assert!(p >= 1.0, "minkowski: order p = {p} must be >= 1");
    if p.is_infinite() {
        return a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs())
            .fold(0.0_f64, f64::max);
    }
    if (p - 2.0).abs() < f64::EPSILON {
        // Fast path: avoids powf in the kNN hot loop.
        return a
            .iter()
            .zip(b)
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
    }
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y).abs().powf(p))
        .sum::<f64>()
        .powf(1.0 / p)
}

/// Arithmetic mean (0 for an empty slice).
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population variance (0 for slices shorter than 2).
pub fn variance(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    a.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64
}

/// Population standard deviation.
pub fn std_dev(a: &[f64]) -> f64 {
    variance(a).sqrt()
}

/// Largest entry (`None` for an empty slice; NaNs are ignored).
pub fn max(a: &[f64]) -> Option<f64> {
    a.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |m, x| Some(m.map_or(x, |m: f64| m.max(x))))
}

/// Smallest entry (`None` for an empty slice; NaNs are ignored).
pub fn min(a: &[f64]) -> Option<f64> {
    a.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |m, x| Some(m.map_or(x, |m: f64| m.min(x))))
}

/// Index of the largest entry (`None` for an empty slice).
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, bx)) if bx >= x => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_axpy() {
        let mut a = vec![1.0, 1.0];
        axpy(&mut a, &[2.0, 3.0], 2.0);
        assert_eq!(a, vec![5.0, 7.0]);
        assert_eq!(dot(&a, &[1.0, 0.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn minkowski_special_cases() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(euclidean(&a, &b), 5.0);
        assert_eq!(manhattan(&a, &b), 7.0);
        assert_eq!(minkowski(&a, &b, f64::INFINITY), 4.0);
        // p=3 case exercises the generic powf path.
        let d3 = minkowski(&a, &b, 3.0);
        assert!((d3 - (27.0_f64 + 64.0).powf(1.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn minkowski_rejects_p_below_one() {
        let _ = minkowski(&[0.0], &[1.0], 0.5);
    }

    #[test]
    fn stats_helpers() {
        let a = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&a), 5.0);
        assert_eq!(variance(&a), 4.0);
        assert_eq!(std_dev(&a), 2.0);
        assert_eq!(max(&a), Some(9.0));
        assert_eq!(min(&a), Some(2.0));
        assert_eq!(argmax(&a), Some(7));
    }

    #[test]
    fn empty_slices() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(max(&[]), None);
        assert_eq!(min(&[]), None);
        assert_eq!(argmax(&[]), None);
    }

    #[test]
    fn nan_handling_in_extrema() {
        let a = [f64::NAN, 1.0, 2.0];
        assert_eq!(max(&a), Some(2.0));
        assert_eq!(min(&a), Some(1.0));
        assert_eq!(argmax(&a), Some(2));
    }

    #[test]
    fn distance_identity_and_symmetry() {
        let a = [1.0, -2.0, 3.0];
        let b = [0.5, 0.0, -1.0];
        assert_eq!(euclidean(&a, &a), 0.0);
        assert!((euclidean(&a, &b) - euclidean(&b, &a)).abs() < 1e-15);
    }
}
