//! # lgo-tensor
//!
//! Small, dependency-light dense linear algebra used by every ML component in
//! the `lgo` workspace (the neural-network library, the anomaly detectors and
//! the clustering code).
//!
//! The central type is [`Matrix`], a row-major dense `f64` matrix. Vectors are
//! plain `&[f64]` slices operated on by the free functions in [`vector`].
//! Matrices are deliberately simple — the workloads in this project involve
//! hidden sizes of at most a few dozen, where cache-friendly row-major loops
//! beat the overhead of a full BLAS binding and keep every experiment
//! bit-for-bit reproducible.
//!
//! # Examples
//!
//! ```
//! use lgo_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod block;
mod error;
mod matrix;
pub mod sanitize;
pub mod vector;

pub use block::PackedRhs;
pub use error::ShapeError;
pub use matrix::Matrix;
