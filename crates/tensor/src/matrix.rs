use std::fmt;
use std::ops::{Index, IndexMut};

use crate::error::ShapeError;

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the workhorse value type of the `lgo` ML stack. All binary
/// operations come in two flavours: a panicking one for internal hot paths
/// (`matmul`, `add`, ...) whose shape preconditions are documented under
/// *Panics*, and a checked `try_*` variant returning [`ShapeError`].
///
/// # Examples
///
/// ```
/// use lgo_tensor::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.transpose().shape(), (3, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let m = lgo_tensor::Matrix::zeros(2, 2);
    /// assert_eq!(m.sum(), 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// let i = lgo_tensor::Matrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer of length {} cannot fill {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix from a slice of equally long rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows given");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has length {} but row 0 has {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix whose entry at `(r, c)` is `f(r, c)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(v: &[f64]) -> Self {
        Self::from_vec(1, v.len(), v.to_vec())
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Self::from_vec(v.len(), 1, v.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        let cols = self.cols;
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies column `c` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col index {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self.data[r * self.cols + c]).collect()
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        self.try_matmul(rhs)
            // lint: allow(L1): documented panicking wrapper; try_matmul is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked matrix product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `self.cols() != rhs.rows()`.
    pub fn try_matmul(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        if self.cols != rhs.rows {
            return Err(ShapeError::new("matmul", self.shape(), rhs.shape()));
        }
        crate::sanitize::check_finite(&self.data, "matmul lhs");
        crate::sanitize::check_finite(&rhs.data, "matmul rhs");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner accesses sequential in both
        // operands, which matters for the LSTM-sized matrices used here.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 { // lint: allow(L4): exact-zero sparsity skip — only the literal 0.0 contributes nothing
                    continue;
                }
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in orow.iter_mut().zip(rrow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Element-wise sum `self + rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.try_zip(rhs, "add", |a, b| a + b)
            // lint: allow(L1): documented panicking wrapper; try_add is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn try_add(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference `self - rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.try_zip(rhs, "sub", |a, b| a - b)
            // lint: allow(L1): documented panicking wrapper; try_sub is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn try_sub(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.try_zip(rhs, "hadamard", |a, b| a * b)
            // lint: allow(L1): documented panicking wrapper; try_hadamard is the checked path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the shapes differ.
    pub fn try_hadamard(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        self.try_zip(rhs, "hadamard", |a, b| a * b)
    }

    fn try_zip(
        &self,
        rhs: &Matrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<Matrix, ShapeError> {
        if self.shape() != rhs.shape() {
            return Err(ShapeError::new(op, self.shape(), rhs.shape()));
        }
        crate::sanitize::check_finite(&self.data, op);
        crate::sanitize::check_finite(&rhs.data, op);
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every entry by `k`.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// Applies `f` to every entry, producing a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// In-place `self += rhs * k` (AXPY), the inner loop of every optimizer.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, rhs: &Matrix, k: f64) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "add_scaled: shape mismatch {:?} vs {:?}",
            self.shape(),
            rhs.shape()
        );
        crate::sanitize::check_finite(&rhs.data, "add_scaled rhs");
        crate::sanitize::check_finite_scalar(k, "add_scaled k");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b * k;
        }
    }

    /// Adds `row` to each row of the matrix (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()`.
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(
            row.len(),
            self.cols,
            "add_row_broadcast: row length {} vs {} cols",
            row.len(),
            self.cols
        );
        let mut out = self.clone();
        for r in 0..self.rows {
            for (c, &v) in row.iter().enumerate() {
                out.data[r * self.cols + c] += v;
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: vector length {} vs {} cols",
            x.len(),
            self.cols
        );
        crate::sanitize::check_finite(&self.data, "matvec matrix");
        crate::sanitize::check_finite(x, "matvec vector");
        let mut out = vec![0.0; self.rows];
        for (r, o) in out.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            *o = row.iter().zip(x).map(|(&a, &b)| a * b).sum();
        }
        out
    }

    /// Transposed matrix-vector product `self^T * x` without materializing
    /// the transpose (the backward pass of every linear map).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.rows,
            "matvec_transpose: vector length {} vs {} rows",
            x.len(),
            self.rows
        );
        crate::sanitize::check_finite(&self.data, "matvec_transpose matrix");
        crate::sanitize::check_finite(x, "matvec_transpose vector");
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 { // lint: allow(L4): exact-zero sparsity skip — only the literal 0.0 contributes nothing
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &a) in out.iter_mut().zip(row) {
                *o += a * xr;
            }
        }
        out
    }

    /// In-place rank-one update `self += k * a * b^T` (gradient accumulation
    /// for weight matrices).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != self.rows()` or `b.len() != self.cols()`.
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], k: f64) {
        assert_eq!(a.len(), self.rows, "add_outer: a length {} vs {} rows", a.len(), self.rows);
        assert_eq!(b.len(), self.cols, "add_outer: b length {} vs {} cols", b.len(), self.cols);
        crate::sanitize::check_finite(a, "add_outer a");
        crate::sanitize::check_finite(b, "add_outer b");
        crate::sanitize::check_finite_scalar(k, "add_outer k");
        for (r, &ar) in a.iter().enumerate() {
            if ar == 0.0 { // lint: allow(L4): exact-zero sparsity skip — only the literal 0.0 contributes nothing
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += k * ar * bv;
            }
        }
    }

    /// Outer product of two vectors: returns `a * b^T` as an
    /// `a.len() x b.len()` matrix.
    pub fn outer(a: &[f64], b: &[f64]) -> Matrix {
        let mut out = Matrix::zeros(a.len(), b.len());
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                out.data[i * b.len() + j] = ai * bj;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all entries (0 for an empty matrix).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Clamps every entry into `[lo, hi]` in place.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp_inplace(&mut self, lo: f64, hi: f64) {
        assert!(lo <= hi, "clamp_inplace: lo {lo} > hi {hi}");
        self.map_inplace(|x| x.clamp(lo, hi));
    }

    /// True when any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Fills the matrix with zeros in place.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Fills the matrix with samples from `N(0, std^2)` using `rng`.
    ///
    /// The Gaussian is produced by a Box–Muller transform so that only a
    /// uniform RNG is required.
    pub fn fill_gaussian<R: rand::RngExt + ?Sized>(&mut self, rng: &mut R, std: f64) {
        let mut i = 0;
        while i < self.data.len() {
            let u1: f64 = rng.random_range(f64::EPSILON..1.0);
            let u2: f64 = rng.random_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            self.data[i] = mag * (std::f64::consts::TAU * u2).cos() * std;
            if i + 1 < self.data.len() {
                self.data[i + 1] = mag * (std::f64::consts::TAU * u2).sin() * std;
            }
            i += 2;
        }
    }

    /// Creates a `rows x cols` matrix of `N(0, std^2)` samples.
    pub fn gaussian<R: rand::RngExt + ?Sized>(rows: usize, cols: usize, rng: &mut R, std: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.fill_gaussian(rng, std);
        m
    }

    /// Creates a `rows x cols` matrix of `U(lo, hi)` samples.
    pub fn uniform<R: rand::RngExt + ?Sized>(
        rows: usize,
        cols: usize,
        rng: &mut R,
        lo: f64,
        hi: f64,
    ) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self.data[r * self.cols + c])?;
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_matmul_is_neutral() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
        assert_eq!(Matrix::identity(2).matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn try_matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let e = a.try_matmul(&b).unwrap_err();
        assert_eq!(e.op(), "matmul");
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_panics_on_mismatch() {
        let _ = Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::ones(2, 2);
        let g = Matrix::filled(2, 2, 2.0);
        a.add_scaled(&g, -0.5);
        assert_eq!(a, Matrix::zeros(2, 2));
    }

    #[test]
    fn broadcast_adds_bias_to_each_row() {
        let a = Matrix::zeros(2, 3);
        let out = a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn outer_product() {
        let m = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(1, 2)], 10.0);
    }

    #[test]
    fn reductions() {
        let m = Matrix::from_rows(&[&[1.0, -2.0], &[3.0, -4.0]]);
        assert_eq!(m.sum(), -2.0);
        assert_eq!(m.mean(), -0.5);
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 30.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_reductions_are_zero() {
        let m = Matrix::default();
        assert!(m.is_empty());
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn clamp_and_nan_detection() {
        let mut m = Matrix::from_rows(&[&[-5.0, 0.5, 9.0]]);
        m.clamp_inplace(0.0, 1.0);
        assert_eq!(m.row(0), &[0.0, 0.5, 1.0]);
        assert!(!m.has_non_finite());
        m[(0, 0)] = f64::NAN;
        assert!(m.has_non_finite());
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::gaussian(100, 100, &mut rng, 2.0);
        assert!(m.mean().abs() < 0.1, "mean was {}", m.mean());
        let var = m.map(|x| x * x).mean() - m.mean() * m.mean();
        assert!((var - 4.0).abs() < 0.3, "variance was {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::uniform(10, 10, &mut rng, -1.0, 1.0);
        assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn row_col_accessors() {
        let m = Matrix::from_fn(3, 2, |r, c| (10 * r + c) as f64);
        assert_eq!(m.row(2), &[20.0, 21.0]);
        assert_eq!(m.col(1), vec![1.0, 11.0, 21.0]);
        let rows: Vec<_> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], &[10.0, 11.0]);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn from_vec_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn row_mut_writes_through() {
        let mut m = Matrix::zeros(2, 2);
        m.row_mut(1)[0] = 7.0;
        assert_eq!(m[(1, 0)], 7.0);
    }

    #[test]
    fn matvec_agrees_with_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        assert_eq!(a.matvec(&x), vec![-1.0, 0.5]);
        // transpose path
        let y = [2.0, -1.0];
        let expected = a.transpose().matvec(&y);
        assert_eq!(a.matvec_transpose(&y), expected);
    }

    #[test]
    fn add_outer_rank_one_update() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0, 5.0], 0.5);
        assert_eq!(m[(1, 2)], 5.0);
        assert_eq!(m[(0, 0)], 1.5);
    }

    #[test]
    #[should_panic(expected = "matvec")]
    fn matvec_length_mismatch_panics() {
        let _ = Matrix::zeros(2, 3).matvec(&[1.0]);
    }

    #[test]
    fn row_and_col_vectors() {
        assert_eq!(Matrix::row_vector(&[1.0, 2.0]).shape(), (1, 2));
        assert_eq!(Matrix::col_vector(&[1.0, 2.0]).shape(), (2, 1));
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    mod strict_numerics {
        use super::*;

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in matmul lhs")]
        fn matmul_rejects_nan_operand() {
            let mut a = Matrix::ones(2, 2);
            a[(0, 1)] = f64::NAN;
            let _ = a.matmul(&Matrix::identity(2));
        }

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in add")]
        fn add_rejects_infinite_operand() {
            let mut a = Matrix::ones(2, 2);
            a[(1, 0)] = f64::INFINITY;
            let _ = a.add(&Matrix::ones(2, 2));
        }

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in matvec vector")]
        fn matvec_rejects_nan_vector() {
            let _ = Matrix::ones(2, 2).matvec(&[1.0, f64::NAN]);
        }

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in add_outer")]
        fn add_outer_rejects_nan_gradient() {
            let mut m = Matrix::zeros(2, 2);
            m.add_outer(&[1.0, f64::NAN], &[1.0, 1.0], 1.0);
        }

        #[test]
        fn clean_operands_pass_all_checked_ops() {
            let a = Matrix::ones(2, 2);
            assert_eq!(a.matmul(&Matrix::identity(2)), a);
            assert_eq!(a.add(&Matrix::zeros(2, 2)), a);
            assert_eq!(a.matvec(&[1.0, 1.0]), vec![2.0, 2.0]);
        }
    }
}
