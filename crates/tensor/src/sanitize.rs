//! Debug-build numeric sanitizers behind the `strict-numerics` feature.
//!
//! A silently propagating NaN or infinity is the worst failure mode of a
//! numeric defense stack: downstream scores stay orderable (`total_cmp`
//! ranks NaN deterministically) but are meaningless, and the first corrupt
//! operation is long gone by the time anything looks wrong. With
//! `--features strict-numerics`, debug builds assert finiteness at the entry
//! of every matrix operation, every LSTM/GRU gate computation, and every
//! loss evaluation, so the *first* operation that produces or consumes a
//! non-finite value aborts with its name. The checks are `debug_assert!`
//! based — release builds compile them away even with the feature on — and
//! without the feature they vanish entirely.
//!
//! Note the deliberate tension with the graceful-degradation layer: the
//! divergence-recovery path of `lgo_nn::BiLstmRegressor::try_fit` *expects*
//! to see non-finite losses and roll back. Under strict-numerics (debug) the
//! abort happens first — use the feature to localize the origin of a NaN,
//! not while exercising recovery behaviour.

/// Asserts every value in `values` is finite.
///
/// Active only in debug builds with the `strict-numerics` feature; a no-op
/// otherwise.
#[inline(always)]
pub fn check_finite(values: &[f64], context: &str) {
    #[cfg(feature = "strict-numerics")]
    debug_assert!(
        values.iter().all(|v| v.is_finite()),
        "strict-numerics: non-finite value in {context}"
    );
    #[cfg(not(feature = "strict-numerics"))]
    let _ = (values, context);
}

/// Asserts a single scalar is finite (same gating as [`check_finite`]).
#[inline(always)]
pub fn check_finite_scalar(value: f64, context: &str) {
    #[cfg(feature = "strict-numerics")]
    debug_assert!(
        value.is_finite(),
        "strict-numerics: non-finite value in {context}"
    );
    #[cfg(not(feature = "strict-numerics"))]
    let _ = (value, context);
}

/// Asserts two dimensions agree (same gating as [`check_finite`]); a second
/// line of defense behind the hard shape asserts of the panicking API, for
/// internal paths that skip them.
#[inline(always)]
pub fn check_dims(got: usize, expected: usize, context: &str) {
    #[cfg(feature = "strict-numerics")]
    debug_assert!(
        got == expected,
        "strict-numerics: dimension mismatch in {context}: got {got}, expected {expected}"
    );
    #[cfg(not(feature = "strict-numerics"))]
    let _ = (got, expected, context);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_values_pass() {
        check_finite(&[0.0, -1.5, 1e300], "test");
        check_finite_scalar(42.0, "test");
        check_dims(3, 3, "test");
    }

    #[cfg(all(feature = "strict-numerics", debug_assertions))]
    mod strict {
        use super::*;

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in slice")]
        fn nan_slice_caught() {
            check_finite(&[0.0, f64::NAN], "slice");
        }

        #[test]
        #[should_panic(expected = "strict-numerics: non-finite value in scalar")]
        fn infinite_scalar_caught() {
            check_finite_scalar(f64::INFINITY, "scalar");
        }

        #[test]
        #[should_panic(expected = "dimension mismatch")]
        fn dim_mismatch_caught() {
            check_dims(2, 3, "dims");
        }
    }

    #[cfg(not(feature = "strict-numerics"))]
    #[test]
    fn disabled_feature_is_a_no_op() {
        check_finite(&[f64::NAN], "ignored");
        check_finite_scalar(f64::INFINITY, "ignored");
        check_dims(1, 2, "ignored");
    }
}
