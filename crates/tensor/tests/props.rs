//! Property-based tests for the tensor algebra: classic algebraic laws that
//! must hold for any operand shapes/values, plus metric axioms for the
//! distance functions used by the anomaly detectors.

use lgo_tensor::{vector, Matrix};
use proptest::prelude::*;

/// Strategy producing a matrix of the given shape with small finite entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-100.0..100.0f64, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())))
}

proptest! {
    #[test]
    fn add_commutes(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert!(approx_eq(&a.add(&b), &b.add(&a), 1e-12));
    }

    #[test]
    fn add_associates(a in matrix(2, 3), b in matrix(2, 3), c in matrix(2, 3)) {
        prop_assert!(approx_eq(&a.add(&b).add(&c), &a.add(&b.add(&c)), 1e-12));
    }

    #[test]
    fn sub_then_add_round_trips(a in matrix(3, 3), b in matrix(3, 3)) {
        prop_assert!(approx_eq(&a.sub(&b).add(&b), &a, 1e-12));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(2, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(2, 3), b in matrix(3, 4)) {
        // (AB)^T = B^T A^T
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(approx_eq(&lhs, &rhs, 1e-9));
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), k in -10.0..10.0f64, j in -10.0..10.0f64) {
        let lhs = a.scale(k + j);
        let rhs = a.scale(k).add(&a.scale(j));
        prop_assert!(approx_eq(&lhs, &rhs, 1e-10));
    }

    #[test]
    fn transpose_is_involution(a in matrix(4, 2)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn hadamard_commutes(a in matrix(2, 5), b in matrix(2, 5)) {
        prop_assert!(approx_eq(&a.hadamard(&b), &b.hadamard(&a), 1e-12));
    }

    #[test]
    fn frobenius_norm_scales_absolutely(a in matrix(3, 3), k in -10.0..10.0f64) {
        let lhs = a.scale(k).frobenius_norm();
        let rhs = k.abs() * a.frobenius_norm();
        prop_assert!((lhs - rhs).abs() <= 1e-9 * (1.0 + rhs));
    }
}

proptest! {
    #[test]
    fn minkowski_metric_axioms(
        a in proptest::collection::vec(-50.0..50.0f64, 6),
        b in proptest::collection::vec(-50.0..50.0f64, 6),
        c in proptest::collection::vec(-50.0..50.0f64, 6),
        p in 1.0..4.0f64,
    ) {
        let dab = vector::minkowski(&a, &b, p);
        let dba = vector::minkowski(&b, &a, p);
        let dac = vector::minkowski(&a, &c, p);
        let dcb = vector::minkowski(&c, &b, p);
        // Non-negativity, identity, symmetry, triangle inequality.
        prop_assert!(dab >= 0.0);
        prop_assert!(vector::minkowski(&a, &a, p) <= 1e-12);
        prop_assert!((dab - dba).abs() <= 1e-9 * (1.0 + dab));
        prop_assert!(dab <= dac + dcb + 1e-9 * (1.0 + dab));
    }

    #[test]
    fn dot_cauchy_schwarz(
        a in proptest::collection::vec(-50.0..50.0f64, 8),
        b in proptest::collection::vec(-50.0..50.0f64, 8),
    ) {
        let lhs = vector::dot(&a, &b).abs();
        let rhs = vector::norm2(&a) * vector::norm2(&b);
        prop_assert!(lhs <= rhs + 1e-9 * (1.0 + rhs));
    }

    #[test]
    fn mean_within_bounds(a in proptest::collection::vec(-50.0..50.0f64, 1..32)) {
        let m = vector::mean(&a);
        prop_assert!(m >= vector::min(&a).unwrap() - 1e-12);
        prop_assert!(m <= vector::max(&a).unwrap() + 1e-12);
    }
}
