//! Defense-aware adaptive attackers.
//!
//! Both attackers in this module know the deployed defense: they receive
//! oracle access to the trained anomaly detector through
//! [`AttackContext::detector`] and shape their perturbations to stay under
//! its threshold (Tramèr et al.'s adaptive-attack methodology). They probe
//! the two assumptions the paper's defense rests on:
//!
//! - [`CalibrationDrift`] attacks the *detector threshold*: a slow upward
//!   sensor-calibration drift, escalated stage by stage and rolled back the
//!   moment the detector would flag the window.
//! - [`ClusterPoison`] attacks the *risk-profiling selection*: minimal
//!   boosts designed to slip adversarial windows into the less-vulnerable
//!   cohort's training pool, corrupting the selective training set itself.

use lgo_attack::cgm::{CgmCase, Window, WindowOutcome};
use lgo_attack::AttackResult;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{case_seed, classify_origin, finish_outcome, Attack, AttackContext, ThreatModel};

/// Returns true when the deployed detector (if any) would flag the window.
/// No detector means the adversary operates unopposed.
fn flagged(ctx: &AttackContext<'_>, window: &Window) -> bool {
    ctx.detector.is_some_and(|d| d.is_anomalous(window))
}

/// Slow calibration-drift stealth attacker. Simulates a compromised sensor
/// whose readings ramp up over the most recent half of the window: stage
/// `s` raises the drift ceiling toward the hyperglycemic range, each suffix
/// cell rising proportionally to its recency (oldest suffix cell barely
/// moves, newest reaches the ceiling). Escalation stops the moment the
/// deployed detector would flag the candidate — the attacker keeps the last
/// *unflagged* window, trading attack strength for stealth.
#[derive(Debug, Clone, Copy, Default)]
pub struct CalibrationDrift;

impl Attack for CalibrationDrift {
    fn name(&self) -> &'static str {
        "drift"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::DefenseAware
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let cfg = &ctx.zoo.attack;
        let (lo, hi) = cfg.manipulation_range(case.fasting);
        let col = cfg.cgm_column;
        let goal = ctx.goal(case.fasting);
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        if goal.achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let len = case.window.len();
        let k = (len / 2).max(1); // drift affects the most recent half
        let steps = ctx.zoo.steps.max(1);
        let mut best: Option<(Window, f64, usize)> = None;
        for s in 1..=steps {
            let ceiling = lo + (hi - lo) * s as f64 / steps as f64;
            let mut cand = case.window.clone();
            for j in 0..k {
                let t = len - k + j;
                // Recency-proportional ramp: the newest cell reaches the
                // stage ceiling, older suffix cells drift less. Cells
                // already above their ramp value stay untouched, so every
                // modified cell lands inside [lo, hi] by construction.
                let ramp = lo + (ceiling - lo) * (j + 1) as f64 / k as f64;
                if cand[t][col] < ramp {
                    cand[t][col] = ramp;
                }
            }
            if flagged(ctx, &cand) {
                break; // the defense would notice: back off, keep last stage
            }
            let out = ctx.forecaster.predict(&cand);
            queries += 1;
            if best
                .as_ref()
                .is_none_or(|&(_, b, _)| goal.score(out) > goal.score(b))
            {
                best = Some((cand, out, s));
            }
            if goal.achieved(out) {
                break;
            }
        }
        finish_outcome(ctx, case, benign, best, queries)
    }
}

/// Cluster-poisoning attacker against the selective-training pipeline. It
/// does not try to push predictions over the hyperglycemia threshold at
/// all: it plants a *minimal* boost — the final CGM cell nudged just inside
/// the manipulation range — sized (and halved, using the detector oracle)
/// until the deployed detector accepts the window as benign. Windows that
/// slip through contaminate the less-vulnerable cohort's training pool, so
/// a detector retrained on that pool learns the attacker's signature as
/// normal. Success for this attacker is *placement* (an unflagged
/// manipulated window), not evasion.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClusterPoison;

impl Attack for ClusterPoison {
    fn name(&self) -> &'static str {
        "poison"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::DefenseAware
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let cfg = &ctx.zoo.attack;
        let (lo, hi) = cfg.manipulation_range(case.fasting);
        let col = cfg.cgm_column;
        let goal = ctx.goal(case.fasting);
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        let mut rng = StdRng::seed_from_u64(case_seed(ctx, case));
        // Subtle by design: the boost lands just above the range floor,
        // far below what an evasion attacker would use.
        let cap = ctx.zoo.eps.min(20.0);
        let mut u = if cap > 0.0 {
            rng.random_range(0.0..cap)
        } else {
            0.0
        };
        for _ in 0..=4 {
            let mut cand = case.window.clone();
            cand[case.window.len() - 1][col] = (lo + u).clamp(lo, hi);
            if !flagged(ctx, &cand) {
                let out = ctx.forecaster.predict(&cand);
                queries += 1;
                // Keep the poisoned window even when it scores worse than
                // benign under the evasion goal — placement is the point.
                return WindowOutcome {
                    index: case.index,
                    fasting: case.fasting,
                    benign_prediction: benign,
                    origin: classify_origin(benign, cfg, case.fasting),
                    result: AttackResult {
                        achieved: goal.achieved(out),
                        best_input: cand,
                        best_output: out,
                        queries,
                        steps: 1,
                    },
                };
            }
            u *= 0.5; // detector noticed: halve the boost and retry
        }
        finish_outcome(ctx, case, benign, None, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{quick_cases, quick_forecaster};
    use crate::ZooConfig;
    use lgo_attack::cgm::CgmManipulationConstraint;
    use lgo_attack::Constraint;
    use lgo_detect::AnomalyDetector;

    /// Flags every window whose CGM channel exceeds a fixed ceiling.
    struct CeilingDetector(f64);

    impl AnomalyDetector for CeilingDetector {
        fn name(&self) -> &'static str {
            "ceiling"
        }

        fn score(&self, window: &Window) -> f64 {
            let max = window
                .iter()
                .map(|r| r[0])
                .fold(f64::NEG_INFINITY, f64::max);
            max - self.0
        }
    }

    #[test]
    fn drift_backs_off_under_a_strict_detector() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        // A detector that flags every candidate: the drift attacker must
        // leave every window benign.
        let strict = CeilingDetector(0.0);
        let ctx = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 1,
            detector: Some(&strict),
        };
        for case in &cases {
            let o = CalibrationDrift.run(&ctx, case);
            assert_eq!(o.result.steps, 0, "drift escalated past a strict detector");
            // Non-Hyper origins: the very first escalation stage is flagged,
            // so the attacker backs off before evaluating any candidate —
            // only the benign query is spent.
            if o.origin != lgo_attack::cgm::OriginState::Hyper {
                assert_eq!(o.result.queries, 1, "drift probed past a flagged stage");
            }
        }
        // Without a detector the same attacker escalates freely: every
        // non-Hyper case evaluates its drift stages.
        let open = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 1,
            detector: None,
        };
        let explored = cases
            .iter()
            .filter(|c| CalibrationDrift.run(&open, c).result.queries > 1)
            .count();
        assert!(explored > 0, "unopposed drift never evaluated a candidate");
    }

    #[test]
    fn poison_windows_are_constraint_safe_and_survive_lenient_detectors() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        let lenient = CeilingDetector(1000.0); // flags nothing
        let ctx = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 9,
            detector: Some(&lenient),
        };
        for case in &cases {
            let o = ClusterPoison.run(&ctx, case);
            assert_eq!(o.result.steps, 1, "lenient detector should accept poison");
            let constraint = CgmManipulationConstraint::from_config(&zoo.attack, case.fasting);
            assert!(constraint.is_satisfied(&case.window, &o.result.best_input));
            // The planted boost is deliberately small: the final CGM cell
            // sits just above the manipulation-range floor.
            let (lo, _) = zoo.attack.manipulation_range(case.fasting);
            let last = o.result.best_input.last().unwrap()[zoo.attack.cgm_column];
            assert!((lo..=lo + 20.0).contains(&last));
        }
        // A detector that flags the whole manipulation range starves the
        // halving loop (lo + u stays >= lo) and the attacker gives up.
        let strict = CeilingDetector(0.0);
        let blocked = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 9,
            detector: Some(&strict),
        };
        for case in &cases {
            let o = ClusterPoison.run(&blocked, case);
            assert_eq!(o.result.steps, 0, "strict detector should block poison");
        }
    }
}
