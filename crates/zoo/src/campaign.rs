//! The unified campaign harness: fans any [`Attack`] over a set of windows
//! with `lgo_runtime::par_map` and packages the outcomes in the same
//! [`CampaignReport`] / [`PatientAttackProfile`] shapes the rest of the
//! pipeline consumes. Per-window randomness derives from
//! [`case_seed`](crate::case_seed), so reports are byte-identical at any
//! `LGO_THREADS`.

use lgo_attack::cgm::{CampaignReport, CgmCase};
use lgo_core::error::LgoError;
use lgo_core::profile::{try_attack_cases, PatientAttackProfile, ProfilerConfig};
use lgo_core::risk::{instantaneous_risk, RiskProfile};
use lgo_detect::AnomalyDetector;
use lgo_forecast::GlucoseForecaster;
use lgo_glucosim::PatientId;
use lgo_series::MultiSeries;

use crate::{Attack, AttackContext, ZooConfig};

/// Runs one attacker over every case in parallel, preserving input order.
/// `detector` grants defense-aware attackers oracle access to the deployed
/// defense; pass `None` for the undefended configuration (white-box and
/// black-box attackers ignore it either way).
pub fn run_attack_campaign(
    attack: &dyn Attack,
    forecaster: &GlucoseForecaster,
    cases: &[CgmCase],
    zoo: &ZooConfig,
    seed: u64,
    detector: Option<&dyn AnomalyDetector>,
) -> CampaignReport {
    let _span = lgo_trace::span("zoo/campaign");
    let ctx = AttackContext {
        forecaster,
        zoo,
        seed,
        detector,
    };
    let outcomes = lgo_runtime::par_map(cases, |case| attack.run(&ctx, case));
    // Post-hoc instrumentation keeps the parallel closure free of shared
    // state; counter emission order is serial and deterministic.
    if lgo_trace::enabled() {
        lgo_trace::counter("zoo/campaigns", 1);
        lgo_trace::counter("zoo/windows", outcomes.len() as u64);
        let successes = outcomes.iter().filter(|o| o.result.achieved).count();
        lgo_trace::counter("zoo/successes", successes as u64);
        for o in &outcomes {
            lgo_trace::record("zoo/queries_per_window", o.result.queries as u64);
        }
    }
    CampaignReport { outcomes }
}

/// [`lgo_core::profile::try_profile_patient`] with a pluggable attacker:
/// attacks every window of the patient's series and converts the outcomes
/// to a risk profile via the paper's Equation 1. The zoo config governs
/// the attack (the profiler's own `attack`/`explorer_steps` knobs are
/// ignored); the profiler config supplies the windowing stride and the
/// risk severity/threshold tables.
///
/// # Errors
///
/// Returns [`LgoError::NoWindows`] when no complete finite window exists,
/// plus everything [`try_attack_cases`] reports.
#[allow(clippy::too_many_arguments)] // mirrors the core profiler signature plus the zoo/detector context
pub fn try_profile_patient_with(
    attack: &dyn Attack,
    forecaster: &GlucoseForecaster,
    patient: PatientId,
    series: &MultiSeries,
    profiler: &ProfilerConfig,
    zoo: &ZooConfig,
    seed: u64,
    detector: Option<&dyn AnomalyDetector>,
) -> Result<PatientAttackProfile, LgoError> {
    let seq_len = forecaster.config().seq_len;
    let cases = try_attack_cases(series, seq_len, profiler.stride)?;
    if cases.is_empty() {
        return Err(LgoError::NoWindows);
    }
    let campaign = {
        let _stage = lgo_trace::span("stage/attack");
        lgo_trace::counter("stage/attack", 1);
        run_attack_campaign(attack, forecaster, &cases, zoo, seed, detector)
    };
    let _stage = lgo_trace::span("stage/risk");
    lgo_trace::counter("stage/risk", 1);
    lgo_trace::counter("risk/windows", campaign.outcomes.len() as u64);
    let values: Vec<f64> = campaign
        .outcomes
        .iter()
        .map(|o| {
            instantaneous_risk(
                o.benign_prediction,
                o.result.best_output,
                o.fasting,
                &profiler.severity,
                &profiler.thresholds,
            )
        })
        .collect();
    Ok(PatientAttackProfile {
        patient,
        risk_profile: RiskProfile::new(patient.to_string(), values),
        campaign,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::Pgd;
    use crate::testutil::{quick_cases, quick_forecaster};
    use crate::uret::UretAttack;
    use lgo_glucosim::{PatientId, Subset};

    /// Serializes tests that flip the global thread override.
    fn thread_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| std::sync::Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        let _guard = thread_guard();
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = crate::ZooConfig::default();
        let run = |threads: usize| {
            lgo_runtime::set_threads(Some(threads));
            let report = run_attack_campaign(&Pgd, &forecaster, &cases, &zoo, 11, None);
            report
                .outcomes
                .iter()
                .map(|o| (o.index, o.result.best_output, o.result.queries))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        let parallel = run(4);
        lgo_runtime::set_threads(None);
        assert_eq!(serial, parallel, "campaign must not depend on LGO_THREADS");
    }

    #[test]
    fn profile_with_uret_matches_core_profiler_shape() {
        let _guard = thread_guard();
        let (forecaster, series) = quick_forecaster();
        let zoo = crate::ZooConfig::default();
        let profiler = ProfilerConfig {
            stride: 96,
            ..ProfilerConfig::default()
        };
        let id = PatientId::new(Subset::A, 2);
        let profile = try_profile_patient_with(
            &UretAttack::maximizing(4),
            &forecaster,
            id,
            &series,
            &profiler,
            &zoo,
            0,
            None,
        )
        .expect("profiling fixture series should yield windows");
        assert_eq!(profile.patient, id);
        assert_eq!(
            profile.risk_profile.values.len(),
            profile.campaign.outcomes.len(),
            "one risk value per attacked window"
        );
        assert!(profile
            .risk_profile
            .values
            .iter()
            .all(|v| v.is_finite() && *v >= 0.0));
    }
}
