//! Black-box attacker: SPSA (simultaneous perturbation stochastic
//! approximation, Spall 1992; Uesato et al. 2018 in the adversarial
//! setting).
//!
//! The adversary only queries predictions — no gradients. Each iteration
//! probes the model at `δ ± c·Δ` for one Rademacher direction `Δ ∈ {-1,+1}ⁿ`
//! and ascends the two-point gradient estimate. All randomness derives from
//! [`case_seed`](crate::case_seed), so campaigns stay deterministic at any
//! thread count.

use lgo_attack::cgm::{CgmCase, Window, WindowOutcome};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{apply_boost, case_seed, finish_outcome, Attack, AttackContext, ThreatModel};

/// SPSA two-point gradient-estimation attacker (query access only).
#[derive(Debug, Clone, Copy, Default)]
pub struct Spsa;

impl Attack for Spsa {
    fn name(&self) -> &'static str {
        "spsa"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::BlackBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let cfg = &ctx.zoo.attack;
        let (lo, hi) = cfg.manipulation_range(case.fasting);
        let col = cfg.cgm_column;
        let goal = ctx.goal(case.fasting);
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        if goal.achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let eps = ctx.zoo.eps;
        let c = ctx.zoo.spsa_probe;
        let alpha = eps / ctx.zoo.steps.max(1) as f64;
        let mut rng = StdRng::seed_from_u64(case_seed(ctx, case));
        let mut delta = vec![0.0; case.window.len()];
        let mut best: Option<(Window, f64, usize)> = None;
        for step in 1..=ctx.zoo.steps {
            // One Rademacher direction per iteration: all coordinates probed
            // simultaneously, two queries regardless of dimension.
            let dir: Vec<f64> = (0..delta.len())
                .map(|_| if rng.random_range(0.0..1.0) < 0.5 { -1.0 } else { 1.0 })
                .collect();
            let plus: Vec<f64> = delta
                .iter()
                .zip(&dir)
                .map(|(&d, &s)| (d + c * s).clamp(0.0, eps))
                .collect();
            let minus: Vec<f64> = delta
                .iter()
                .zip(&dir)
                .map(|(&d, &s)| (d - c * s).clamp(0.0, eps))
                .collect();
            let yp = ctx
                .forecaster
                .predict(&apply_boost(&case.window, &plus, col, lo, hi));
            let ym = ctx
                .forecaster
                .predict(&apply_boost(&case.window, &minus, col, lo, hi));
            queries += 2;
            let ghat = (yp - ym) / (2.0 * c);
            // lint: allow(L4): an exactly-zero two-point estimate carries no direction; any nonzero magnitude drives a signed step
            if ghat != 0.0 {
                for (d, &s) in delta.iter_mut().zip(&dir) {
                    // Per-coordinate estimate is ghat * s (s = ±1 inverts).
                    let dir_t = if ghat * s > 0.0 { 1.0 } else { -1.0 };
                    *d = (*d + alpha * dir_t).clamp(0.0, eps);
                }
            }
            let cand = apply_boost(&case.window, &delta, col, lo, hi);
            let out = ctx.forecaster.predict(&cand);
            queries += 1;
            if best
                .as_ref()
                .is_none_or(|&(_, b, _)| goal.score(out) > goal.score(b))
            {
                best = Some((cand, out, step));
            }
            if goal.achieved(out) {
                break;
            }
        }
        finish_outcome(ctx, case, benign, best, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{quick_cases, quick_forecaster};
    use crate::ZooConfig;
    use lgo_attack::cgm::CgmManipulationConstraint;
    use lgo_attack::Constraint;

    #[test]
    fn spsa_is_constraint_safe_and_seed_deterministic() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        let run = |seed: u64| -> Vec<(f64, usize)> {
            let ctx = AttackContext {
                forecaster: &forecaster,
                zoo: &zoo,
                seed,
                detector: None,
            };
            cases
                .iter()
                .map(|c| {
                    let o = Spsa.run(&ctx, c);
                    let constraint = CgmManipulationConstraint::from_config(&zoo.attack, c.fasting);
                    assert!(constraint.is_satisfied(&c.window, &o.result.best_input));
                    assert!(o.result.best_output >= o.benign_prediction || o.result.steps == 0);
                    (o.result.best_output, o.result.queries)
                })
                .collect()
        };
        assert_eq!(run(3), run(3), "same seed must reproduce exactly");
    }
}
