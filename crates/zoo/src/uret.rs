//! The paper's URET-style transformation-graph attacker, adapted to the
//! zoo's [`Attack`] trait so the baseline is directly comparable with the
//! gradient, black-box and adaptive attackers in one report.

use lgo_attack::cgm::{attack_window, CgmCase, WindowOutcome};
use lgo_attack::GreedyExplorer;
use lgo_core::profile::ForecastModel;

use crate::{Attack, AttackContext, ThreatModel};

/// The greedy URET explorer from `lgo-attack` behind the zoo trait.
/// Transformation-graph search over set/shift suffix edits — gradient-free,
/// so it sits in the black-box class.
#[derive(Debug, Clone, Copy)]
pub struct UretAttack {
    steps: usize,
    maximize: bool,
}

impl UretAttack {
    /// Minimal-perturbation variant: stops at the first goal-achieving
    /// transformation (the paper's evasion attacker).
    pub fn minimal(steps: usize) -> Self {
        Self {
            steps,
            maximize: false,
        }
    }

    /// Maximizing variant: spends the full step budget pushing the
    /// prediction as high as possible (the risk-profiling attacker).
    pub fn maximizing(steps: usize) -> Self {
        Self {
            steps,
            maximize: true,
        }
    }
}

impl Attack for UretAttack {
    fn name(&self) -> &'static str {
        "uret"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::BlackBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let explorer = if self.maximize {
            GreedyExplorer::maximizing(self.steps)
        } else {
            GreedyExplorer::new(self.steps)
        };
        attack_window(
            &ForecastModel(ctx.forecaster),
            case,
            &explorer,
            &ctx.zoo.attack,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{quick_cases, quick_forecaster};
    use crate::ZooConfig;

    #[test]
    fn uret_trait_run_matches_direct_campaign_call() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        let ctx = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 0,
            detector: None,
        };
        let attack = UretAttack::minimal(4);
        for case in &cases {
            let via_trait = attack.run(&ctx, case);
            let direct = attack_window(
                &ForecastModel(&forecaster),
                case,
                &GreedyExplorer::new(4),
                &zoo.attack,
            );
            assert_eq!(via_trait.result.best_output, direct.result.best_output);
            assert_eq!(via_trait.result.queries, direct.result.queries);
            assert_eq!(via_trait.origin, direct.origin);
        }
    }
}
