//! # lgo-zoo
//!
//! The **attack zoo**: a pluggable subsystem of evasion attackers against
//! the blood-glucose forecaster, all behind one [`Attack`] trait. Where
//! `lgo-attack` reproduces the paper's single URET-style transformation-
//! graph attacker, this crate stress-tests the defense against the wider
//! adversary space the evasion literature presumes (Biggio & Roli's
//! test-time evasion framing; Li & Vorobeychik's adaptive retraining
//! adversaries):
//!
//! - **White-box gradient attacks** ([`gradient`]) — FGSM, BIM, PGD with
//!   random restarts, and a CW-style margin attack, all climbing the exact
//!   input gradients exposed by `lgo_forecast::GlucoseForecaster::
//!   input_gradients` (BPTT through the BiLSTM, chain-ruled back to raw
//!   mg/dL units).
//! - **Black-box attack** ([`blackbox`]) — SPSA two-point gradient
//!   estimation; queries only, no gradients.
//! - **Defense-aware adaptive attacks** ([`adaptive`]) — a slow
//!   calibration-drift stealth attacker that stays under a deployed
//!   detector's threshold, and a cluster-poisoning attacker that targets
//!   the *less-vulnerable* cohort to corrupt the selective training set (a
//!   direct attack on the paper's core assumption).
//! - **The paper's baseline** ([`uret`]) — the greedy URET explorer from
//!   `lgo-attack`, adapted to the trait so every attacker is comparable in
//!   one report.
//!
//! All attackers operate under the paper's threat model: only the CGM
//! channel may be manipulated and every modified cell must lie inside the
//! physiological hyperglycemic range (see `lgo_attack::cgm`). Gradient and
//! random perturbations are parameterized as a per-cell boost `δ ∈ [0, ε]`
//! applied as `clamp(x + δ, lo, hi)`, so every crafted window satisfies
//! [`CgmManipulationConstraint`](lgo_attack::cgm::CgmManipulationConstraint)
//! by construction.
//!
//! [`campaign`] fans attackers over window sets with `lgo_runtime::par_map`
//! (per-case seeds via [`lgo_runtime::split_seed`], so campaigns are
//! byte-identical at any `LGO_THREADS`), and [`experiment`] packages the
//! `exp_attack_zoo` study: every attacker versus the LGO-selective and
//! no-defense detector configurations, with a canonical-JSON report.
//!
//! # Examples
//!
//! ```
//! use lgo_zoo::{Attack, AttackContext, ZooConfig};
//! use lgo_zoo::gradient::Fgsm;
//! use lgo_forecast::{ForecastConfig, GlucoseForecaster};
//! use lgo_glucosim::{profile, PatientId, Simulator, Subset};
//!
//! let id = PatientId::new(Subset::A, 2);
//! let series = Simulator::new(profile(id)).run_days(2);
//! let fc = ForecastConfig { hidden: 6, epochs: 1, ..ForecastConfig::default() };
//! let forecaster = GlucoseForecaster::train_personalized(&series, &fc);
//! let zoo = ZooConfig::default();
//! let cases = lgo_core::profile::attack_cases(&series, 12, 48);
//! let ctx = AttackContext { forecaster: &forecaster, zoo: &zoo, seed: 1, detector: None };
//! let outcome = Fgsm.run(&ctx, &cases[0]);
//! assert!(outcome.result.queries >= 1);
//! ```

use lgo_attack::cgm::{CgmAttackConfig, CgmCase, OriginState, Window, WindowOutcome};
use lgo_attack::{AttackResult, Goal};
use lgo_detect::AnomalyDetector;
use lgo_forecast::GlucoseForecaster;

pub mod adaptive;
pub mod blackbox;
pub mod campaign;
pub mod defense;
pub mod experiment;
pub mod gradient;
pub mod uret;

pub use campaign::{run_attack_campaign, try_profile_patient_with};
pub use defense::{
    run_defense_bench, try_run_defense_bench, DefenseBenchConfig, DefenseReport, ZooCrafter,
};
pub use experiment::{run_attack_zoo, try_run_attack_zoo, ZooExperimentConfig, ZooReport};

/// The adversary's knowledge/access class, for the threat-model table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThreatModel {
    /// Full access to model parameters and gradients.
    WhiteBox,
    /// Query access to predictions only.
    BlackBox,
    /// Query access plus knowledge of the deployed defense (detector
    /// decisions, cohort clustering).
    DefenseAware,
}

impl ThreatModel {
    /// Display name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ThreatModel::WhiteBox => "white-box",
            ThreatModel::BlackBox => "black-box",
            ThreatModel::DefenseAware => "defense-aware",
        }
    }
}

/// Shared attacker knobs. `eps` and `steps` are the two externally tunable
/// parameters (`LGO_ZOO_EPS` / `LGO_ZOO_STEPS` in the bench harness); the
/// rest pin the per-attacker details.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Domain constraints and goal thresholds (shared with `lgo-attack`).
    pub attack: CgmAttackConfig,
    /// ℓ∞ perturbation budget per CGM cell, in mg/dL: the boost `δ` every
    /// gradient/random attacker may add before the feasibility clamp.
    pub eps: f64,
    /// Iteration budget for the iterative attackers (BIM/PGD/CW/SPSA) and
    /// the escalation-stage count of the calibration-drift attacker.
    pub steps: usize,
    /// Number of PGD random restarts.
    pub restarts: usize,
    /// SPSA probe magnitude `c` in mg/dL.
    pub spsa_probe: f64,
    /// CW confidence margin `κ` in mg/dL: the attack aims for
    /// `threshold + κ`, then shrinks the perturbation while success holds.
    pub kappa: f64,
    /// Campaign base seed; every per-window RNG derives from it via
    /// [`lgo_runtime::split_seed`].
    pub seed: u64,
}

impl Default for ZooConfig {
    fn default() -> Self {
        Self {
            attack: CgmAttackConfig::default(),
            eps: 75.0,
            steps: 8,
            restarts: 3,
            spsa_probe: 10.0,
            kappa: 5.0,
            seed: 0x5EED,
        }
    }
}

/// Everything an attacker sees when it attacks one window.
pub struct AttackContext<'a> {
    /// The victim model (white-box attackers also read its gradients).
    pub forecaster: &'a GlucoseForecaster,
    /// Shared attacker knobs.
    pub zoo: &'a ZooConfig,
    /// Campaign-level seed; per-window randomness must derive from it and
    /// the case index via [`case_seed`] so parallel campaigns stay
    /// deterministic.
    pub seed: u64,
    /// The deployed anomaly detector, when the threat model grants the
    /// adversary oracle access to defense decisions (defense-aware
    /// attackers only; `None` for the rest).
    pub detector: Option<&'a dyn AnomalyDetector>,
}

impl AttackContext<'_> {
    /// The goal for a window: push the prediction above the applicable
    /// hyperglycemia threshold.
    pub fn goal(&self, fasting: bool) -> Goal {
        Goal::PushAbove(self.zoo.attack.threshold(fasting))
    }
}

/// One evasion attacker. Implementations must be deterministic given the
/// context seed (all randomness via [`case_seed`]-derived RNGs) and `Sync`
/// so campaigns can fan windows out across the lgo-runtime pool.
pub trait Attack: Sync {
    /// Stable attacker identifier used in reports and registries.
    fn name(&self) -> &'static str;

    /// The adversary class this attacker models.
    fn threat_model(&self) -> ThreatModel;

    /// Attacks one window, returning the same per-window record the
    /// URET campaign runner produces so all attackers share reporting.
    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome;
}

/// The deterministic per-window seed: campaign seed split by case index.
pub fn case_seed(ctx: &AttackContext<'_>, case: &CgmCase) -> u64 {
    lgo_runtime::split_seed(ctx.seed, case.index as u64)
}

/// Classifies a benign prediction into the origin state the campaign
/// reports use (same rule as `lgo_attack::cgm::attack_window`).
pub fn classify_origin(benign: f64, cfg: &CgmAttackConfig, fasting: bool) -> OriginState {
    if benign < cfg.hypo_threshold {
        OriginState::Hypo
    } else if benign > cfg.threshold(fasting) {
        OriginState::Hyper
    } else {
        OriginState::Normal
    }
}

/// Applies a CGM-channel boost vector: cells with `delta > 0` become
/// `clamp(x + delta, lo, hi)`, cells with `delta <= 0` stay untouched.
/// Every result satisfies the paper's manipulation constraint by
/// construction (modified cells inside `[lo, hi]`, other channels intact).
pub fn apply_boost(window: &Window, delta: &[f64], column: usize, lo: f64, hi: f64) -> Window {
    let mut out = window.clone();
    for (row, &d) in out.iter_mut().zip(delta) {
        if d > 0.0 {
            row[column] = (row[column] + d).clamp(lo, hi);
        }
    }
    out
}

/// The CGM-column slice of the forecaster's raw-unit input gradient: one
/// value per window row, `∂prediction/∂cgm[t]` in (mg/dL out)/(mg/dL in).
/// Returns `None` when the window does not match the forecaster geometry.
pub fn cgm_gradient(
    forecaster: &GlucoseForecaster,
    window: &Window,
    column: usize,
) -> Option<Vec<f64>> {
    forecaster
        .try_input_gradients(window)
        .ok()
        .map(|g| g.iter().map(|row| row[column]).collect())
}

/// Packages an attack trajectory into the campaign's per-window record:
/// classifies the benign origin and keeps whichever of benign/adversarial
/// scored better under the goal.
pub fn finish_outcome(
    ctx: &AttackContext<'_>,
    case: &CgmCase,
    benign: f64,
    best: Option<(Window, f64, usize)>,
    queries: usize,
) -> WindowOutcome {
    let cfg = &ctx.zoo.attack;
    let goal = ctx.goal(case.fasting);
    let origin = classify_origin(benign, cfg, case.fasting);
    let result = match best {
        Some((input, output, steps)) if goal.score(output) > goal.score(benign) => AttackResult {
            achieved: goal.achieved(output),
            best_input: input,
            best_output: output,
            queries,
            steps,
        },
        _ => AttackResult {
            achieved: goal.achieved(benign),
            best_input: case.window.clone(),
            best_output: benign,
            queries,
            steps: 0,
        },
    };
    WindowOutcome {
        index: case.index,
        fasting: case.fasting,
        benign_prediction: benign,
        origin,
        result,
    }
}

/// Every attacker in the zoo, in report order: the URET baseline, the four
/// white-box gradient attacks, the black-box SPSA attack and the two
/// defense-aware adaptive attacks.
pub fn standard_zoo() -> Vec<Box<dyn Attack>> {
    vec![
        Box::new(uret::UretAttack::minimal(6)),
        Box::new(gradient::Fgsm),
        Box::new(gradient::Bim),
        Box::new(gradient::Pgd),
        Box::new(gradient::CwMargin),
        Box::new(blackbox::Spsa),
        Box::new(adaptive::CalibrationDrift),
        Box::new(adaptive::ClusterPoison),
    ]
}

/// Looks an attacker up by its [`Attack::name`] (e.g. for the
/// `LGO_ZOO_ATTACK` harness knob). Returns `None` for unknown names.
pub fn attack_by_name(name: &str) -> Option<Box<dyn Attack>> {
    standard_zoo().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared fixtures for the per-module test suites: one tiny personalized
    //! forecaster plus a handful of attack cases, kept deliberately small so
    //! every attacker's tests stay fast.
    use lgo_attack::cgm::CgmCase;
    use lgo_forecast::{ForecastConfig, GlucoseForecaster};
    use lgo_glucosim::{profile, PatientId, Simulator, Subset};
    use lgo_series::MultiSeries;

    pub fn quick_forecaster() -> (GlucoseForecaster, MultiSeries) {
        let series = Simulator::new(profile(PatientId::new(Subset::A, 2))).run_days(2);
        let cfg = ForecastConfig {
            hidden: 6,
            epochs: 1,
            ..ForecastConfig::default()
        };
        let forecaster = GlucoseForecaster::train_personalized(&series, &cfg);
        (forecaster, series)
    }

    pub fn quick_cases(series: &MultiSeries) -> Vec<CgmCase> {
        let cases = lgo_core::profile::attack_cases(series, 12, 96);
        assert!(!cases.is_empty(), "fixture produced no attack cases");
        cases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_boost_respects_clamp_and_leaves_untouched_cells() {
        let w: Window = vec![vec![100.0, 1.0], vec![200.0, 2.0]];
        let out = apply_boost(&w, &[50.0, 0.0], 0, 125.0, 499.0);
        // 100 + 50 = 150, inside [125, 499].
        assert_eq!(out[0][0], 150.0);
        // delta == 0 leaves the cell (and its below-floor value) untouched.
        assert_eq!(out[1][0], 200.0);
        // Other channels never change.
        assert_eq!(out[0][1], 1.0);
        assert_eq!(out[1][1], 2.0);
        // Clamp floor engages for small boosts from below the range.
        let low = apply_boost(&w, &[1.0, 0.0], 0, 125.0, 499.0);
        assert_eq!(low[0][0], 125.0);
        // Clamp ceiling engages near the sensor maximum.
        let high = apply_boost(&w, &[1000.0, 0.0], 0, 125.0, 499.0);
        assert_eq!(high[0][0], 499.0);
    }

    #[test]
    fn origin_classification_matches_campaign_rule() {
        let cfg = CgmAttackConfig::default();
        assert_eq!(classify_origin(60.0, &cfg, true), OriginState::Hypo);
        assert_eq!(classify_origin(100.0, &cfg, true), OriginState::Normal);
        assert_eq!(classify_origin(150.0, &cfg, true), OriginState::Hyper);
        // Postprandially 150 is still normal (threshold 180).
        assert_eq!(classify_origin(150.0, &cfg, false), OriginState::Normal);
    }

    #[test]
    fn registry_covers_all_threat_models_with_unique_names() {
        let zoo = standard_zoo();
        assert!(zoo.len() >= 6, "paper comparison needs at least 6 attackers");
        let names: std::collections::BTreeSet<&str> =
            zoo.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), zoo.len(), "attacker names must be unique");
        for tm in [
            ThreatModel::WhiteBox,
            ThreatModel::BlackBox,
            ThreatModel::DefenseAware,
        ] {
            assert!(
                zoo.iter().any(|a| a.threat_model() == tm),
                "no attacker for {}",
                tm.name()
            );
        }
        assert!(attack_by_name("pgd").is_some());
        assert!(attack_by_name("no-such-attack").is_none());
    }
}
