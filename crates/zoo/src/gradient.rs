//! White-box gradient attackers: FGSM, BIM, PGD (random restarts) and a
//! CW-style margin attack.
//!
//! All four climb the forecaster's exact input gradients
//! ([`GlucoseForecaster::input_gradients`](lgo_forecast::GlucoseForecaster::input_gradients)
//! — BPTT through the BiLSTM, chain-ruled back to raw mg/dL units) in the
//! boost parameterization `δ ∈ [0, ε]`, `v = clamp(x + δ, lo, hi)`: every
//! candidate window satisfies the paper's CGM manipulation constraint by
//! construction. Negative gradient components are ignored — pulling a CGM
//! cell *down* can never enter the hyperglycemic manipulation range.

use lgo_attack::cgm::{CgmCase, Window, WindowOutcome};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{
    apply_boost, case_seed, cgm_gradient, finish_outcome, Attack, AttackContext, ThreatModel,
};

/// The ±1/0 step direction of a gradient component (unlike `f64::signum`,
/// a zero gradient moves nothing).
fn direction(g: f64) -> f64 {
    if g > 0.0 {
        1.0
    } else if g < 0.0 {
        -1.0
    } else {
        0.0
    }
}

/// Iterative signed-gradient ascent from a starting boost vector — the
/// shared core of BIM and PGD. Each iteration recomputes the gradient at
/// the current adversarial window, takes an `ε/steps` signed step per cell
/// (projected back into `[0, ε]`) and re-evaluates; stops at the goal, a
/// fixed point or the step budget. Returns the best `(window, output,
/// steps)` seen, `None` when nothing improved on the benign window.
fn signed_ascent(
    ctx: &AttackContext<'_>,
    case: &CgmCase,
    mut delta: Vec<f64>,
    queries: &mut usize,
) -> Option<(Window, f64, usize)> {
    let cfg = &ctx.zoo.attack;
    let (lo, hi) = cfg.manipulation_range(case.fasting);
    let col = cfg.cgm_column;
    let goal = ctx.goal(case.fasting);
    let alpha = ctx.zoo.eps / ctx.zoo.steps.max(1) as f64;
    let mut best: Option<(Window, f64, usize)> = None;

    // Evaluate a non-trivial starting point (PGD's random init).
    if delta.iter().any(|&d| d > 0.0) {
        let cand = apply_boost(&case.window, &delta, col, lo, hi);
        let out = ctx.forecaster.predict(&cand);
        *queries += 1;
        best = Some((cand, out, 1));
        if goal.achieved(out) {
            return best;
        }
    }

    for step in 1..=ctx.zoo.steps {
        let at = apply_boost(&case.window, &delta, col, lo, hi);
        let Some(g) = cgm_gradient(ctx.forecaster, &at, col) else {
            break;
        };
        *queries += 1; // the gradient pass runs the model once
        let mut moved = false;
        for (d, &gt) in delta.iter_mut().zip(&g) {
            let nd = (*d + alpha * direction(gt)).clamp(0.0, ctx.zoo.eps);
            if nd != *d {
                *d = nd;
                moved = true;
            }
        }
        if !moved {
            break; // fixed point: zero gradient or saturated budget
        }
        let cand = apply_boost(&case.window, &delta, col, lo, hi);
        let out = ctx.forecaster.predict(&cand);
        *queries += 1;
        if best
            .as_ref()
            .is_none_or(|&(_, b, _)| goal.score(out) > goal.score(b))
        {
            best = Some((cand, out, step));
        }
        if goal.achieved(out) {
            break;
        }
    }
    best
}

/// Fast Gradient Sign Method (Goodfellow et al.): one full-budget step
/// `δ = ε · 1[∂f/∂x > 0]`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fgsm;

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "fgsm"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::WhiteBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let cfg = &ctx.zoo.attack;
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        if ctx.goal(case.fasting).achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let best = cgm_gradient(ctx.forecaster, &case.window, cfg.cgm_column).and_then(|g| {
            queries += 1;
            let delta: Vec<f64> = g
                .iter()
                .map(|&gt| if gt > 0.0 { ctx.zoo.eps } else { 0.0 })
                .collect();
            // lint: allow(L4): cells are exactly 0.0 or eps by construction above; exact compare detects the all-zero boost
            if delta.iter().all(|&d| d == 0.0) {
                return None;
            }
            let (lo, hi) = cfg.manipulation_range(case.fasting);
            let adv = apply_boost(&case.window, &delta, cfg.cgm_column, lo, hi);
            let out = ctx.forecaster.predict(&adv);
            queries += 1;
            Some((adv, out, 1))
        });
        finish_outcome(ctx, case, benign, best, queries)
    }
}

/// Basic Iterative Method (Kurakin et al.): FGSM repeated with `ε/steps`
/// step size and projection back into the budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bim;

impl Attack for Bim {
    fn name(&self) -> &'static str {
        "bim"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::WhiteBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        if ctx.goal(case.fasting).achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let n = case.window.len();
        let best = signed_ascent(ctx, case, vec![0.0; n], &mut queries);
        finish_outcome(ctx, case, benign, best, queries)
    }
}

/// Projected Gradient Descent (Madry et al.): BIM from several random
/// starting points inside the budget; the restart RNGs derive from
/// [`lgo_runtime::split_seed`] so campaigns stay deterministic at any
/// thread count.
#[derive(Debug, Clone, Copy, Default)]
pub struct Pgd;

impl Attack for Pgd {
    fn name(&self) -> &'static str {
        "pgd"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::WhiteBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        let goal = ctx.goal(case.fasting);
        if goal.achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let n = case.window.len();
        let base = case_seed(ctx, case);
        let mut best: Option<(Window, f64, usize)> = None;
        for restart in 0..ctx.zoo.restarts.max(1) {
            let mut rng = StdRng::seed_from_u64(lgo_runtime::split_seed(base, restart as u64));
            let init: Vec<f64> = (0..n)
                .map(|_| {
                    if restart == 0 || ctx.zoo.eps <= 0.0 {
                        0.0 // first restart is plain BIM
                    } else {
                        rng.random_range(0.0..ctx.zoo.eps)
                    }
                })
                .collect();
            if let Some((w, out, steps)) = signed_ascent(ctx, case, init, &mut queries) {
                let better = best
                    .as_ref()
                    .is_none_or(|&(_, b, _)| goal.score(out) > goal.score(b));
                if better {
                    best = Some((w, out, steps));
                }
                if best.as_ref().is_some_and(|&(_, b, _)| goal.achieved(b)) {
                    break; // early exit: a successful restart ends the search
                }
            }
        }
        finish_outcome(ctx, case, benign, best, queries)
    }
}

/// Carlini–Wagner-style margin attack: continuous (magnitude-weighted, not
/// sign) gradient ascent toward `threshold + κ`, followed by a shrink phase
/// that halves the boost while the attack keeps succeeding — the returned
/// adversarial window is a *low-distortion* success, not a saturated one.
#[derive(Debug, Clone, Copy, Default)]
pub struct CwMargin;

impl Attack for CwMargin {
    fn name(&self) -> &'static str {
        "cw"
    }

    fn threat_model(&self) -> ThreatModel {
        ThreatModel::WhiteBox
    }

    fn run(&self, ctx: &AttackContext<'_>, case: &CgmCase) -> WindowOutcome {
        let cfg = &ctx.zoo.attack;
        let (lo, hi) = cfg.manipulation_range(case.fasting);
        let col = cfg.cgm_column;
        let goal = ctx.goal(case.fasting);
        let threshold = cfg.threshold(case.fasting);
        let benign = ctx.forecaster.predict(&case.window);
        let mut queries = 1;
        if goal.achieved(benign) {
            return finish_outcome(ctx, case, benign, None, queries);
        }
        let lr = ctx.zoo.eps / ctx.zoo.steps.max(1) as f64;
        let mut delta = vec![0.0; case.window.len()];
        let mut best: Option<(Window, f64, usize)> = None;
        for step in 1..=ctx.zoo.steps {
            let at = apply_boost(&case.window, &delta, col, lo, hi);
            let Some(g) = cgm_gradient(ctx.forecaster, &at, col) else {
                break;
            };
            queries += 1;
            let m = g.iter().fold(0.0_f64, |a, &v| a.max(v.abs()));
            // lint: allow(L4): exactly-zero gradient norm means a flat model; normalizing by it would divide by zero
            if m == 0.0 {
                break;
            }
            for (d, &gt) in delta.iter_mut().zip(&g) {
                *d = (*d + lr * gt / m).clamp(0.0, ctx.zoo.eps);
            }
            let cand = apply_boost(&case.window, &delta, col, lo, hi);
            let out = ctx.forecaster.predict(&cand);
            queries += 1;
            if best
                .as_ref()
                .is_none_or(|&(_, b, _)| goal.score(out) > goal.score(b))
            {
                best = Some((cand, out, step));
            }
            if out > threshold + ctx.zoo.kappa {
                // Margin reached with confidence κ: shrink the boost while
                // the attack still clears the bare threshold.
                for _ in 0..4 {
                    let half: Vec<f64> = delta.iter().map(|d| d * 0.5).collect();
                    let cand = apply_boost(&case.window, &half, col, lo, hi);
                    let out = ctx.forecaster.predict(&cand);
                    queries += 1;
                    if out > threshold {
                        delta = half;
                        best = Some((cand, out, step));
                    } else {
                        break;
                    }
                }
                break;
            }
        }
        finish_outcome(ctx, case, benign, best, queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{quick_cases, quick_forecaster};
    use crate::ZooConfig;
    use lgo_attack::cgm::CgmManipulationConstraint;
    use lgo_attack::Constraint;

    fn all_constrained(outcomes: &[(CgmCase, WindowOutcome)], cfg: &ZooConfig) {
        for (case, o) in outcomes {
            let c = CgmManipulationConstraint::from_config(&cfg.attack, case.fasting);
            assert!(
                c.is_satisfied(&case.window, &o.result.best_input),
                "adversarial window violates the manipulation constraint"
            );
        }
    }

    #[test]
    fn gradient_attackers_respect_constraints_and_sometimes_succeed() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        let ctx = AttackContext {
            forecaster: &forecaster,
            zoo: &zoo,
            seed: 7,
            detector: None,
        };
        let attackers: [&dyn Attack; 4] = [&Fgsm, &Bim, &Pgd, &CwMargin];
        for a in attackers {
            let outcomes: Vec<(CgmCase, WindowOutcome)> = cases
                .iter()
                .map(|c| (c.clone(), a.run(&ctx, c)))
                .collect();
            all_constrained(&outcomes, &zoo);
            for (_, o) in &outcomes {
                assert!(o.result.queries >= 1, "{}: no queries counted", a.name());
                assert!(
                    o.result.best_output.is_finite(),
                    "{}: non-finite output",
                    a.name()
                );
                // The best output can never be worse than benign.
                assert!(
                    o.result.best_output >= o.benign_prediction
                        || o.result.steps == 0,
                    "{}: kept a worse-than-benign window",
                    a.name()
                );
            }
        }
    }

    #[test]
    fn pgd_is_deterministic_per_seed_and_sensitive_to_it() {
        let (forecaster, series) = quick_forecaster();
        let cases = quick_cases(&series);
        let zoo = ZooConfig::default();
        let run = |seed: u64| -> Vec<(f64, usize)> {
            let ctx = AttackContext {
                forecaster: &forecaster,
                zoo: &zoo,
                seed,
                detector: None,
            };
            cases
                .iter()
                .map(|c| {
                    let o = Pgd.run(&ctx, c);
                    (o.result.best_output, o.result.queries)
                })
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed must reproduce exactly");
    }

    #[test]
    fn fgsm_zero_gradient_leaves_window_benign() {
        // direction() must not treat a zero gradient as +1 (f64::signum does).
        assert_eq!(direction(0.0), 0.0);
        assert_eq!(direction(-3.0), -1.0);
        assert_eq!(direction(2.0), 1.0);
    }
}
