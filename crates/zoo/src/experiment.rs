//! The `exp_attack_zoo` study: every attacker in the zoo versus the
//! LGO-selective and no-defense detector configurations.
//!
//! For each patient the experiment trains the personalized forecaster,
//! builds the paper's risk profiles (URET campaigns), clusters the cohort
//! into less-/more-vulnerable groups and trains two kNN detectors: **lgo**
//! (selective training on the less-vulnerable cohort — the paper's defense)
//! and **all** (no defense: trained on everyone). Every attacker then runs
//! a test-period campaign per patient, and the report records attack
//! success plus each detector's recall over the manipulated windows. The
//! cluster-poisoning attacker closes the loop: it plants stealth windows in
//! the less-vulnerable cohort's *training* pool and the lgo detector is
//! retrained on the contaminated pool before being re-measured.
//!
//! All floats render with `{:?}` and keys in fixed order, so the report is
//! byte-identical at any `LGO_THREADS` (pinned by `tests/attack_zoo.rs`).

use std::fmt::Write as _;

use lgo_attack::cgm::{CgmCase, OriginState, Window};
use lgo_core::error::LgoError;
use lgo_core::pipeline::benign_windows;
use lgo_core::profile::{try_attack_cases, PatientAttackProfile, ProfilerConfig};
use lgo_core::selective::{train_detector_with_fallback, DetectorConfigs, DetectorKind};
use lgo_core::vuln::try_cluster_cohort;
use lgo_detect::AnomalyDetector;
use lgo_forecast::{ForecastConfig, GlucoseForecaster};
use lgo_glucosim::{generate_cohort_sized, PatientId, Subset};

use crate::campaign::{run_attack_campaign, try_profile_patient_with};
use crate::uret::UretAttack;
use crate::{standard_zoo, ZooConfig};

/// Configuration of one attack-zoo study.
#[derive(Debug, Clone)]
pub struct ZooExperimentConfig {
    /// The cohort under attack.
    pub patients: Vec<PatientId>,
    /// Simulated training days per patient.
    pub train_days: usize,
    /// Simulated test days per patient.
    pub test_days: usize,
    /// Target-forecaster hyper-parameters.
    pub forecast: ForecastConfig,
    /// Windowing stride plus risk severity/threshold tables. The URET
    /// baseline also takes its step budget from `explorer_steps`; the
    /// zoo attackers use [`ZooConfig::steps`].
    pub profiler: ProfilerConfig,
    /// Detector hyper-parameters (kNN is the primary kind here).
    pub detectors: DetectorConfigs,
    /// Shared attacker knobs (`eps`, `steps`, seeds).
    pub zoo: ZooConfig,
    /// Window stride for the training-period campaigns (detector training
    /// data and the poisoning attack surface).
    pub train_attack_stride: usize,
    /// Stride between benign detector windows.
    pub detector_stride: usize,
}

impl ZooExperimentConfig {
    /// A reduced configuration for tests and the fast bench tier: four
    /// patients, tiny forecasters, large strides.
    pub fn fast() -> Self {
        Self {
            patients: vec![
                PatientId::new(Subset::A, 2),
                PatientId::new(Subset::A, 5),
                PatientId::new(Subset::B, 2),
                PatientId::new(Subset::B, 4),
            ],
            train_days: 3,
            test_days: 1,
            forecast: ForecastConfig {
                hidden: 8,
                epochs: 2,
                ..ForecastConfig::default()
            },
            profiler: ProfilerConfig {
                stride: 24,
                explorer_steps: 3,
                ..ProfilerConfig::default()
            },
            detectors: DetectorConfigs::default(),
            zoo: ZooConfig::default(),
            train_attack_stride: 48,
            detector_stride: 24,
        }
    }
}

/// One attacker's line in the report.
#[derive(Debug, Clone)]
pub struct AttackerRow {
    /// [`Attack::name`].
    pub name: String,
    /// Threat-model display name (`white-box` / `black-box` /
    /// `defense-aware`).
    pub threat_model: &'static str,
    /// Per-patient attack success rate, roster order. `None` for patients
    /// the attacker does not target (the poisoner only attacks the
    /// less-vulnerable cohort) or with no evaluable windows.
    pub per_patient: Vec<(PatientId, Option<f64>)>,
    /// Pooled success rate over all attacked windows (benign-Hyper origins
    /// excluded, matching [`lgo_attack::cgm::CampaignReport::success_rate`]).
    /// For the poisoner this is the *placement* rate: the fraction of
    /// windows planted without being flagged.
    pub success_rate: Option<f64>,
    /// Total windows attacked across the cohort.
    pub windows_attacked: usize,
    /// Windows actually manipulated (`steps > 0`).
    pub windows_manipulated: usize,
    /// Total model queries spent.
    pub total_queries: usize,
    /// The LGO-selective detector's recall over this attacker's manipulated
    /// windows. On the poison row: the recall of the lgo detector *after*
    /// retraining on the contaminated pool, measured on the PGD reference
    /// windows.
    pub recall_lgo: Option<f64>,
    /// The no-defense (all-patients) detector's recall over the same
    /// windows.
    pub recall_all: Option<f64>,
}

/// Everything `exp_attack_zoo` produces.
#[derive(Debug, Clone)]
pub struct ZooReport {
    /// `ε` the campaigns ran with (mg/dL).
    pub eps: f64,
    /// Iteration budget the campaigns ran with.
    pub steps: usize,
    /// The less-vulnerable cohort (selective training set).
    pub less_vulnerable: Vec<PatientId>,
    /// The more-vulnerable cohort.
    pub more_vulnerable: Vec<PatientId>,
    /// Detector kind actually trained for the LGO configuration (fallback
    /// chain may substitute).
    pub lgo_detector: &'static str,
    /// Detector kind actually trained for the no-defense configuration.
    pub all_detector: &'static str,
    /// One row per attacker, registry order (URET, FGSM, BIM, PGD, CW,
    /// SPSA, drift, poison).
    pub rows: Vec<AttackerRow>,
}

impl ZooReport {
    /// Renders the report as canonical JSON: fixed key order, `{:?}`
    /// floats, `null` for missing rates, no timestamps — byte-identical
    /// across thread counts by the campaign determinism contract.
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"experiment\": \"attack_zoo\",\n  \"eps\": {:?},\n  \"steps\": {},\n",
            self.eps, self.steps
        );
        let _ = write!(
            out,
            "  \"less_vulnerable\": [{}],\n  \"more_vulnerable\": [{}],\n",
            join_ids(&self.less_vulnerable),
            join_ids(&self.more_vulnerable),
        );
        let _ = write!(
            out,
            "  \"lgo_detector\": \"{}\",\n  \"all_detector\": \"{}\",\n",
            self.lgo_detector, self.all_detector
        );
        out.push_str("  \"attackers\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let per_patient: Vec<String> = row
                .per_patient
                .iter()
                .map(|(id, s)| format!("{{\"patient\": \"{id}\", \"success\": {}}}", fmt_opt(*s)))
                .collect();
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"threat_model\": \"{}\", \"success_rate\": {}, \
                 \"windows_attacked\": {}, \"windows_manipulated\": {}, \"queries\": {}, \
                 \"recall_lgo\": {}, \"recall_all\": {}, \"per_patient\": [{}]}}",
                row.name,
                row.threat_model,
                fmt_opt(row.success_rate),
                row.windows_attacked,
                row.windows_manipulated,
                row.total_queries,
                fmt_opt(row.recall_lgo),
                fmt_opt(row.recall_all),
                per_patient.join(", "),
            );
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Looks a row up by attacker name.
    pub fn row(&self, name: &str) -> Option<&AttackerRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// `{:?}` float or `null`.
pub(crate) fn fmt_opt(v: Option<f64>) -> String {
    v.map_or_else(|| "null".into(), |v| format!("{v:?}"))
}

/// Comma-joined quoted patient-id list.
pub(crate) fn join_ids(ids: &[PatientId]) -> String {
    ids.iter()
        .map(|id| format!("\"{id}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Per-patient artifacts phase 1 produces before any zoo attacker runs
/// (shared with the [`crate::defense`] study).
pub(crate) struct PatientSetup {
    pub(crate) id: PatientId,
    pub(crate) forecaster: GlucoseForecaster,
    /// Test-period attack surface (risk-profile stride).
    pub(crate) test_cases: Vec<CgmCase>,
    /// Training-period attack surface (detector/poison stride).
    pub(crate) train_cases: Vec<CgmCase>,
    pub(crate) train_benign: Vec<Window>,
    /// Minimal URET manipulations of the training period — the supervised
    /// detector's malicious training windows, as in the paper pipeline.
    pub(crate) train_malicious: Vec<Window>,
    /// Benign test-period windows (false-positive-rate measurement).
    pub(crate) test_benign: Vec<Window>,
    pub(crate) profile: PatientAttackProfile,
}

/// Runs the attack-zoo study.
///
/// # Panics
///
/// Panics on any [`try_run_attack_zoo`] error.
pub fn run_attack_zoo(config: &ZooExperimentConfig) -> ZooReport {
    match try_run_attack_zoo(config) {
        Ok(r) => r,
        // Documented panicking wrapper; try_run_attack_zoo is the checked path.
        Err(e) => panic!("run_attack_zoo: {e}"),
    }
}

/// Fallible [`run_attack_zoo`].
///
/// # Errors
///
/// Returns [`LgoError::TooFewPatients`] for cohorts under two patients,
/// [`LgoError::NoWindows`] when a patient's series yields no attackable or
/// benign windows, and propagates forecaster-training, clustering and
/// detector-training errors.
pub fn try_run_attack_zoo(config: &ZooExperimentConfig) -> Result<ZooReport, LgoError> {
    if config.patients.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: config.patients.len(),
        });
    }
    let _span = lgo_trace::span("zoo/experiment");
    let datasets: Vec<_> = {
        let _sim = lgo_trace::span("zoo/simulate");
        generate_cohort_sized(config.train_days, config.test_days)
            .into_iter()
            .filter(|d| config.patients.contains(&d.profile.id))
            .collect()
    };
    if datasets.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: datasets.len(),
        });
    }

    // Phase 1 — per-patient setup: forecaster, attack surfaces, benign
    // windows, URET baseline campaigns. Per-patient seeds split off the
    // zoo seed, so the parallel fan-out is bit-identical to a serial loop.
    let setups = lgo_runtime::par_map_indexed(datasets.len(), |i| {
        build_patient(config, &datasets[i], lgo_runtime::split_seed(config.zoo.seed, i as u64))
    });
    let setups: Vec<PatientSetup> = setups.into_iter().collect::<Result<_, _>>()?;

    // Phase 2 — vulnerability clustering on the URET risk profiles.
    let profiles: Vec<PatientAttackProfile> =
        setups.iter().map(|s| s.profile.clone()).collect();
    let clusters = {
        let _stage = lgo_trace::span("stage/cluster");
        try_cluster_cohort(&profiles, lgo_cluster::Linkage::Average)?
    };

    // Phase 3 — the two detector configurations: LGO-selective (the
    // paper's defense, trained only on the less-vulnerable cohort) and
    // no-defense (trained on everyone).
    let pool = |ids: &[PatientId]| -> (Vec<Window>, Vec<Window>) {
        let mut benign = Vec::new();
        let mut malicious = Vec::new();
        for s in setups.iter().filter(|s| ids.contains(&s.id)) {
            benign.extend(s.train_benign.iter().cloned());
            malicious.extend(s.train_malicious.iter().cloned());
        }
        (benign, malicious)
    };
    let all_ids: Vec<PatientId> = setups.iter().map(|s| s.id).collect();
    let (lgo_benign, lgo_malicious) = pool(&clusters.less_vulnerable);
    let (all_benign, all_malicious) = pool(&all_ids);
    let (lgo_det, lgo_kind) = {
        let _stage = lgo_trace::span("zoo/train_detectors");
        train_detector_with_fallback(
            DetectorKind::Knn,
            &lgo_benign,
            &lgo_malicious,
            &config.detectors,
        )?
    };
    let (all_det, all_kind) =
        train_detector_with_fallback(DetectorKind::Knn, &all_benign, &all_malicious, &config.detectors)?;

    // Phase 4 — evasion rows: every attacker except the poisoner attacks
    // each patient's test period. The drift attacker is defense-aware, so
    // it gets oracle access to the deployed LGO detector.
    let zoo = standard_zoo();
    let mut rows = Vec::with_capacity(zoo.len());
    let mut pgd_reference: Vec<Window> = Vec::new();
    for (ai, attack) in zoo.iter().enumerate() {
        if attack.name() == "poison" {
            continue; // phase 5: the poisoner attacks the training pool
        }
        let row_seed = lgo_runtime::split_seed(config.zoo.seed, 0x100 + ai as u64);
        let detector: Option<&dyn AnomalyDetector> = if attack.name() == "drift" {
            Some(&*lgo_det)
        } else {
            None
        };
        let mut per_patient = Vec::with_capacity(setups.len());
        let mut manipulated: Vec<Window> = Vec::new();
        let (mut attacked, mut queries, mut num, mut den) = (0usize, 0usize, 0usize, 0usize);
        for (pi, s) in setups.iter().enumerate() {
            let report = run_attack_campaign(
                attack.as_ref(),
                &s.forecaster,
                &s.test_cases,
                &config.zoo,
                lgo_runtime::split_seed(row_seed, pi as u64),
                detector,
            );
            per_patient.push((s.id, report.success_rate()));
            attacked += report.outcomes.len();
            queries += report.total_queries();
            for o in &report.outcomes {
                if o.origin != OriginState::Hyper {
                    den += 1;
                    if o.result.achieved {
                        num += 1;
                    }
                }
                if o.result.steps > 0 {
                    manipulated.push(o.result.best_input.clone());
                }
            }
        }
        if attack.name() == "pgd" {
            pgd_reference = manipulated.clone();
        }
        rows.push(AttackerRow {
            name: attack.name().to_string(),
            threat_model: attack.threat_model().name(),
            per_patient,
            success_rate: rate(num, den),
            windows_attacked: attacked,
            windows_manipulated: manipulated.len(),
            total_queries: queries,
            recall_lgo: recall(&*lgo_det, &manipulated),
            recall_all: recall(&*all_det, &manipulated),
        });
    }

    // Phase 5 — cluster poisoning: the adversary plants stealth windows in
    // the *less-vulnerable* cohort's training pool (the windows the
    // selective defense trusts), sized to evade the deployed detector.
    // The LGO detector is then retrained on the contaminated pool and
    // re-measured on the PGD reference windows.
    if let Some(poison) = zoo.iter().find(|a| a.name() == "poison") {
        let _stage = lgo_trace::span("zoo/poison");
        let row_seed = lgo_runtime::split_seed(config.zoo.seed, 0x200);
        let mut per_patient = Vec::with_capacity(setups.len());
        let mut planted: Vec<Window> = Vec::new();
        let (mut attacked, mut queries) = (0usize, 0usize);
        for (pi, s) in setups.iter().enumerate() {
            if !clusters.is_less_vulnerable(s.id) {
                per_patient.push((s.id, None));
                continue;
            }
            let report = run_attack_campaign(
                poison.as_ref(),
                &s.forecaster,
                &s.train_cases,
                &config.zoo,
                lgo_runtime::split_seed(row_seed, pi as u64),
                Some(&*lgo_det),
            );
            let placed: Vec<Window> = report
                .outcomes
                .iter()
                .filter(|o| o.result.steps > 0)
                .map(|o| o.result.best_input.clone())
                .collect();
            per_patient.push((s.id, rate(placed.len(), report.outcomes.len())));
            attacked += report.outcomes.len();
            queries += report.total_queries();
            planted.extend(placed);
        }
        let poisoned_benign: Vec<Window> = lgo_benign
            .iter()
            .cloned()
            .chain(planted.iter().cloned())
            .collect();
        let (poisoned_det, _) = train_detector_with_fallback(
            DetectorKind::Knn,
            &poisoned_benign,
            &lgo_malicious,
            &config.detectors,
        )?;
        rows.push(AttackerRow {
            name: poison.name().to_string(),
            threat_model: poison.threat_model().name(),
            per_patient,
            success_rate: rate(planted.len(), attacked),
            windows_attacked: attacked,
            windows_manipulated: planted.len(),
            total_queries: queries,
            recall_lgo: recall(&*poisoned_det, &pgd_reference),
            recall_all: recall(&*all_det, &pgd_reference),
        });
    }

    lgo_trace::counter("zoo/attackers", rows.len() as u64);
    Ok(ZooReport {
        eps: config.zoo.eps,
        steps: config.zoo.steps,
        less_vulnerable: clusters.less_vulnerable,
        more_vulnerable: clusters.more_vulnerable,
        lgo_detector: lgo_kind.name(),
        all_detector: all_kind.name(),
        rows,
    })
}

/// Phase 1 for one patient (runs inside the cohort fan-out).
pub(crate) fn build_patient(
    config: &ZooExperimentConfig,
    d: &lgo_glucosim::PatientDataset,
    seed: u64,
) -> Result<PatientSetup, LgoError> {
    let _span = lgo_trace::span("zoo/patient");
    let forecaster = GlucoseForecaster::try_train_personalized(&d.train, &config.forecast)
        .map_err(LgoError::from)?;
    let seq_len = config.forecast.seq_len;
    let test_cases = try_attack_cases(&d.test, seq_len, config.profiler.stride)?;
    let train_cases = try_attack_cases(&d.train, seq_len, config.train_attack_stride)?;
    if test_cases.is_empty() || train_cases.is_empty() {
        return Err(LgoError::NoWindows);
    }
    let train_benign: Vec<Window> =
        benign_windows(&d.train, seq_len, config.detector_stride)
            .into_iter()
            .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
            .collect();
    if train_benign.is_empty() {
        return Err(LgoError::NoWindows);
    }
    // Benign test windows for FPR measurement; may be empty at extreme
    // strides (rates then report as null rather than erroring).
    let test_benign: Vec<Window> = benign_windows(&d.test, seq_len, config.detector_stride)
        .into_iter()
        .filter(|w| w.iter().flatten().all(|v| v.is_finite()))
        .collect();
    // The supervised detector's malicious training data: minimal (early
    // exit) URET manipulations, what a stealthy adversary would inject.
    let minimal = run_attack_campaign(
        &UretAttack::minimal(config.profiler.explorer_steps),
        &forecaster,
        &train_cases,
        &config.zoo,
        lgo_runtime::split_seed(seed, 0),
        None,
    );
    let train_malicious: Vec<Window> = minimal
        .outcomes
        .iter()
        .filter(|o| o.result.steps > 0)
        .map(|o| o.result.best_input.clone())
        .collect();
    // The risk profile the clustering step consumes: a maximizing URET
    // campaign over the test period, exactly like the paper pipeline.
    let profile = try_profile_patient_with(
        &UretAttack::maximizing(config.profiler.explorer_steps),
        &forecaster,
        d.profile.id,
        &d.test,
        &config.profiler,
        &config.zoo,
        lgo_runtime::split_seed(seed, 1),
        None,
    )?;
    Ok(PatientSetup {
        id: d.profile.id,
        forecaster,
        test_cases,
        train_cases,
        train_benign,
        train_malicious,
        test_benign,
        profile,
    })
}

/// `num / den` as a rate, `None` for an empty denominator.
pub(crate) fn rate(num: usize, den: usize) -> Option<f64> {
    (den > 0).then(|| num as f64 / den as f64)
}

/// Fraction of windows a detector flags, `None` when there are none.
pub(crate) fn recall(detector: &dyn AnomalyDetector, windows: &[Window]) -> Option<f64> {
    let flagged = windows.iter().filter(|w| detector.is_anomalous(w)).count();
    rate(flagged, windows.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ZooExperimentConfig {
        let mut config = ZooExperimentConfig::fast();
        // Two patients and coarse strides keep the full study test-fast.
        config.patients = vec![PatientId::new(Subset::A, 2), PatientId::new(Subset::A, 5)];
        config.profiler.stride = 96;
        config.train_attack_stride = 96;
        config.detector_stride = 48;
        config.forecast.hidden = 6;
        config.forecast.epochs = 1;
        config.zoo.steps = 4;
        config.zoo.restarts = 2;
        config
    }

    #[test]
    fn attack_zoo_report_covers_every_attacker() {
        let report = try_run_attack_zoo(&tiny_config()).expect("tiny study should run");
        // All 8 registry attackers, poison last.
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.rows.last().map(|r| r.name.as_str()), Some("poison"));
        for name in ["uret", "fgsm", "bim", "pgd", "cw", "spsa", "drift", "poison"] {
            let row = report.row(name).unwrap_or_else(|| panic!("missing row {name}"));
            assert_eq!(row.per_patient.len(), 2, "{name}: roster mismatch");
            for r in [row.success_rate, row.recall_lgo, row.recall_all]
                .into_iter()
                .flatten()
            {
                assert!((0.0..=1.0).contains(&r), "{name}: rate {r} out of range");
            }
            assert!(row.windows_manipulated <= row.windows_attacked, "{name}");
        }
        // Clusters partition the cohort.
        assert_eq!(
            report.less_vulnerable.len() + report.more_vulnerable.len(),
            2
        );
        // The white-box attackers must manipulate at least some windows at
        // the default ε.
        let pgd = report.row("pgd").expect("pgd row");
        assert!(pgd.windows_manipulated > 0, "PGD never manipulated a window");
    }

    #[test]
    fn canonical_json_is_schema_stable() {
        let report = try_run_attack_zoo(&tiny_config()).expect("tiny study should run");
        let json = report.canonical_json();
        for key in [
            "\"experiment\": \"attack_zoo\"",
            "\"eps\": ",
            "\"steps\": ",
            "\"less_vulnerable\": ",
            "\"attackers\": ",
            "\"recall_lgo\": ",
            "\"per_patient\": ",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN"), "canonical JSON must not contain NaN");
        // Rendering is a pure function of the report.
        assert_eq!(json, report.canonical_json());
    }

    #[test]
    fn cohorts_below_two_patients_are_rejected() {
        let mut config = tiny_config();
        config.patients.truncate(1);
        assert!(matches!(
            try_run_attack_zoo(&config),
            Err(LgoError::TooFewPatients { got: 1 })
        ));
    }
}
