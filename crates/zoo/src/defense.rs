//! The `exp_defense` study: the pluggable [`Defense`] strategies versus
//! the attack zoo, Table-2 style.
//!
//! The experiment reuses `exp_attack_zoo`'s phase-1 artifacts (personalized
//! forecasters, URET risk profiles, detector training pools) and
//! vulnerability clustering, then fits each requested defense's full
//! MAD-GAN → OC-SVM → kNN ladder via [`try_fit_bank`] and serves it through
//! `lgo-serve`'s [`DetectorBank`]. A fixed panel of test-period attackers
//! (URET, PGD, SPSA — one per threat model) is run **once**, and every
//! (defense × ladder level × attacker) cell reports the detector's recall
//! over that attacker's manipulated windows next to the benign
//! false-positive rate — the recall/FPR trade-off the paper's Table 2
//! tabulates per strategy.
//!
//! ROAST and iterative retraining craft adversarial windows against the
//! currently deployed detector through [`ZooCrafter`], which adapts the
//! zoo's PGD attacker to `lgo-core`'s [`AdversarialCrafter`] seam. The
//! shared kernel cache is cleared (entries, not statistics) before the
//! fitting phase, so each defense's hit/miss delta — the cache-reuse story
//! across ROAST refits — is reproducible run to run.
//!
//! All floats render with `{:?}` and keys in fixed order, so the report is
//! byte-identical at any `LGO_THREADS` (pinned by `tests/defense.rs`).

use std::fmt::Write as _;

use lgo_attack::cgm::{CgmCase, Window};
use lgo_core::defense::{
    try_fit_bank, AdversarialCrafter, Defense, DefenseContext, IterativeRetrainingConfig,
    IterativeRetrainingDefense, LgoSelectiveDefense, RoastConfig, RoastDefense,
};
use lgo_core::error::LgoError;
use lgo_core::profile::PatientAttackProfile;
use lgo_core::selective::{PatientData, TrainingStrategy};
use lgo_core::vuln::try_cluster_cohort;
use lgo_detect::AnomalyDetector;
use lgo_forecast::GlucoseForecaster;
use lgo_glucosim::{generate_cohort_sized, PatientId};
use lgo_serve::DetectorBank;

use crate::campaign::run_attack_campaign;
use crate::experiment::{
    build_patient, fmt_opt, join_ids, recall, PatientSetup, ZooExperimentConfig,
};
use crate::{attack_by_name, Attack, ZooConfig};

/// The test-period attacker panel, one per threat model (white-box,
/// black-box, and the paper's baseline).
pub const TEST_ATTACKERS: [&str; 3] = ["uret", "pgd", "spsa"];

/// The canonical defense roster, report order. [`DefenseBenchConfig::
/// defenses`] filters this list; seeds are pinned to the *unfiltered*
/// position so a filtered run reproduces the full run's rows byte-for-byte.
pub const DEFENSE_NAMES: [&str; 4] = [
    "lgo-selective",
    "indiscriminate",
    "roast",
    "iterative-retraining",
];

/// Configuration of one defense study.
#[derive(Debug, Clone)]
pub struct DefenseBenchConfig {
    /// Cohort, fidelity and attacker knobs (shared with `exp_attack_zoo`).
    pub base: ZooExperimentConfig,
    /// ROAST hyper-parameters.
    pub roast: RoastConfig,
    /// Iterative-retraining hyper-parameters.
    pub retrain: IterativeRetrainingConfig,
    /// Defense names to run (subset of [`DEFENSE_NAMES`]); empty = all.
    pub defenses: Vec<String>,
}

impl DefenseBenchConfig {
    /// The reduced configuration for tests and the fast bench tier.
    pub fn fast() -> Self {
        Self {
            base: ZooExperimentConfig::fast(),
            roast: RoastConfig {
                rounds: 2,
                ..RoastConfig::default()
            },
            retrain: IterativeRetrainingConfig {
                rounds: 1,
                ..IterativeRetrainingConfig::default()
            },
            defenses: Vec::new(),
        }
    }
}

/// Crafts adversarial windows by running a zoo attack campaign against the
/// currently deployed detector — the live implementation of `lgo-core`'s
/// [`AdversarialCrafter`] seam used by ROAST and iterative retraining.
pub struct ZooCrafter<'a> {
    attack: &'a dyn Attack,
    /// (victim forecaster, attack surface) per targeted patient.
    targets: Vec<(&'a GlucoseForecaster, &'a [CgmCase])>,
    zoo: &'a ZooConfig,
}

impl<'a> ZooCrafter<'a> {
    /// A crafter running `attack` against each target's window set.
    pub fn new(
        attack: &'a dyn Attack,
        targets: Vec<(&'a GlucoseForecaster, &'a [CgmCase])>,
        zoo: &'a ZooConfig,
    ) -> Self {
        Self {
            attack,
            targets,
            zoo,
        }
    }
}

impl AdversarialCrafter for ZooCrafter<'_> {
    fn name(&self) -> &'static str {
        "zoo"
    }

    fn craft(&self, _round: usize, seed: u64, deployed: &dyn AnomalyDetector) -> Vec<Window> {
        let _span = lgo_trace::span("defense/craft");
        let mut out = Vec::new();
        for (ti, (forecaster, cases)) in self.targets.iter().enumerate() {
            let report = run_attack_campaign(
                self.attack,
                forecaster,
                cases,
                self.zoo,
                lgo_runtime::split_seed(seed, ti as u64),
                Some(deployed),
            );
            out.extend(
                report
                    .outcomes
                    .iter()
                    .filter(|o| o.result.steps > 0)
                    .map(|o| o.result.best_input.clone()),
            );
        }
        lgo_trace::counter("defense/crafted_windows", out.len() as u64);
        out
    }
}

/// One (ladder level × attacker) recall entry.
#[derive(Debug, Clone)]
pub struct AttackerRecall {
    /// Attacker name ([`TEST_ATTACKERS`] order).
    pub attacker: &'static str,
    /// Detector recall over that attacker's manipulated windows; `None`
    /// when the attacker manipulated nothing.
    pub recall: Option<f64>,
}

/// One trained ladder level of one defense.
#[derive(Debug, Clone)]
pub struct DefenseLevel {
    /// Ladder position (0 = primary MAD-GAN).
    pub level: usize,
    /// Detector kind requested for this level.
    pub requested: &'static str,
    /// Detector kind that actually trained (fallback chain).
    pub trained: &'static str,
    /// Benign training windows used.
    pub training_windows: usize,
    /// False-positive rate over the cohort's pooled benign test windows.
    pub fpr: Option<f64>,
    /// Recall per attacker, [`TEST_ATTACKERS`] order.
    pub recalls: Vec<AttackerRecall>,
}

/// One defense's line in the report.
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// [`Defense::name`].
    pub name: &'static str,
    /// Training roster description.
    pub roster: &'static str,
    /// Whether adversarial windows entered the fit as labeled outliers.
    pub outlier_exposure: bool,
    /// Adversarial refit rounds configured.
    pub rounds: usize,
    /// Kernel-cache hits during this defense's fitting phase — nonzero
    /// hits on the ROAST row are the benign-Gram reuse across refits.
    pub cache_hits: u64,
    /// Kernel-cache misses during this defense's fitting phase.
    pub cache_misses: u64,
    /// The trained MAD-GAN → OC-SVM → kNN ladder.
    pub levels: Vec<DefenseLevel>,
}

/// Everything `exp_defense` produces.
#[derive(Debug, Clone)]
pub struct DefenseReport {
    /// `ε` the campaigns ran with (mg/dL).
    pub eps: f64,
    /// Iteration budget the campaigns ran with.
    pub steps: usize,
    /// ROAST fit rounds configured.
    pub roast_rounds: usize,
    /// Iterative-retraining rounds configured.
    pub retrain_rounds: usize,
    /// The less-vulnerable cohort.
    pub less_vulnerable: Vec<PatientId>,
    /// The more-vulnerable cohort.
    pub more_vulnerable: Vec<PatientId>,
    /// Pooled benign test windows the FPR column is measured on.
    pub benign_test_windows: usize,
    /// Manipulated-window counts per attacker, [`TEST_ATTACKERS`] order.
    pub attackers: Vec<(&'static str, usize)>,
    /// One row per defense, [`DEFENSE_NAMES`] order (filtered).
    pub rows: Vec<DefenseRow>,
}

impl DefenseReport {
    /// Renders the report as canonical JSON: fixed key order, `{:?}`
    /// floats, `null` for missing rates, no timestamps — byte-identical
    /// across thread counts.
    pub fn canonical_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = write!(
            out,
            "  \"experiment\": \"defense\",\n  \"eps\": {:?},\n  \"steps\": {},\n",
            self.eps, self.steps
        );
        let _ = write!(
            out,
            "  \"roast_rounds\": {},\n  \"retrain_rounds\": {},\n",
            self.roast_rounds, self.retrain_rounds
        );
        let _ = write!(
            out,
            "  \"less_vulnerable\": [{}],\n  \"more_vulnerable\": [{}],\n",
            join_ids(&self.less_vulnerable),
            join_ids(&self.more_vulnerable),
        );
        let _ = writeln!(out, "  \"benign_test_windows\": {},", self.benign_test_windows);
        let attackers: Vec<String> = self
            .attackers
            .iter()
            .map(|(name, n)| format!("{{\"name\": \"{name}\", \"windows_manipulated\": {n}}}"))
            .collect();
        let _ = writeln!(out, "  \"attackers\": [{}],", attackers.join(", "));
        out.push_str("  \"defenses\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"roster\": \"{}\", \"outlier_exposure\": {}, \
                 \"rounds\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \"levels\": [",
                row.name,
                row.roster,
                row.outlier_exposure,
                row.rounds,
                row.cache_hits,
                row.cache_misses,
            );
            for (j, level) in row.levels.iter().enumerate() {
                let recalls: Vec<String> = level
                    .recalls
                    .iter()
                    .map(|r| {
                        format!(
                            "{{\"attacker\": \"{}\", \"recall\": {}}}",
                            r.attacker,
                            fmt_opt(r.recall)
                        )
                    })
                    .collect();
                let _ = write!(
                    out,
                    "      {{\"level\": {}, \"requested\": \"{}\", \"trained\": \"{}\", \
                     \"training_windows\": {}, \"fpr\": {}, \"recalls\": [{}]}}",
                    level.level,
                    level.requested,
                    level.trained,
                    level.training_windows,
                    fmt_opt(level.fpr),
                    recalls.join(", "),
                );
                out.push_str(if j + 1 < row.levels.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]}");
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Looks a row up by defense name.
    pub fn row(&self, name: &str) -> Option<&DefenseRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

/// Runs the defense study.
///
/// # Panics
///
/// Panics on any [`try_run_defense_bench`] error.
pub fn run_defense_bench(config: &DefenseBenchConfig) -> DefenseReport {
    match try_run_defense_bench(config) {
        Ok(r) => r,
        // Documented panicking wrapper; try_run_defense_bench is checked.
        Err(e) => panic!("run_defense_bench: {e}"),
    }
}

/// Fallible [`run_defense_bench`].
///
/// # Errors
///
/// Returns [`LgoError::TooFewPatients`] for cohorts under two patients,
/// [`LgoError::NoWindows`] when a patient's series yields no attackable or
/// benign windows, and propagates forecaster-training, clustering and
/// detector-training errors.
pub fn try_run_defense_bench(config: &DefenseBenchConfig) -> Result<DefenseReport, LgoError> {
    let base = &config.base;
    if base.patients.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: base.patients.len(),
        });
    }
    let _span = lgo_trace::span("defense/experiment");
    let datasets: Vec<_> = {
        let _sim = lgo_trace::span("zoo/simulate");
        generate_cohort_sized(base.train_days, base.test_days)
            .into_iter()
            .filter(|d| base.patients.contains(&d.profile.id))
            .collect()
    };
    if datasets.len() < 2 {
        return Err(LgoError::TooFewPatients {
            got: datasets.len(),
        });
    }

    // Phase 1 — per-patient setup, exactly as in exp_attack_zoo (same
    // seeds, so the two studies see the same forecasters and pools).
    let setups = lgo_runtime::par_map_indexed(datasets.len(), |i| {
        build_patient(base, &datasets[i], lgo_runtime::split_seed(base.zoo.seed, i as u64))
    });
    let setups: Vec<PatientSetup> = setups.into_iter().collect::<Result<_, _>>()?;

    // Phase 2 — vulnerability clustering on the URET risk profiles.
    let profiles: Vec<PatientAttackProfile> = setups.iter().map(|s| s.profile.clone()).collect();
    let clusters = {
        let _stage = lgo_trace::span("stage/cluster");
        try_cluster_cohort(&profiles, lgo_cluster::Linkage::Average)?
    };

    // Phase 3 — the attacker panel runs ONCE (none of the panel attackers
    // is defense-aware, so their campaigns are defense-independent) and
    // every defense is scored against the same manipulated windows.
    let mut attacker_windows: Vec<(&'static str, Vec<Window>)> = Vec::new();
    for (ai, name) in TEST_ATTACKERS.iter().enumerate() {
        let _stage = lgo_trace::span("defense/test_campaigns");
        // TEST_ATTACKERS only lists registry attackers.
        let attack = attack_by_name(name).expect("panel attacker in registry");
        let row_seed = lgo_runtime::split_seed(base.zoo.seed, 0x300 + ai as u64);
        let mut manipulated = Vec::new();
        for (pi, s) in setups.iter().enumerate() {
            let report = run_attack_campaign(
                attack.as_ref(),
                &s.forecaster,
                &s.test_cases,
                &base.zoo,
                lgo_runtime::split_seed(row_seed, pi as u64),
                None,
            );
            manipulated.extend(
                report
                    .outcomes
                    .iter()
                    .filter(|o| o.result.steps > 0)
                    .map(|o| o.result.best_input.clone()),
            );
        }
        attacker_windows.push((name, manipulated));
    }
    let test_benign: Vec<Window> = setups
        .iter()
        .flat_map(|s| s.test_benign.iter().cloned())
        .collect();

    // Phase 4 — defense contexts. The cohort's test windows are not read
    // by Defense::fit (scoring happens through the serve bank below), so
    // they stay empty.
    let cohort: Vec<PatientData> = setups
        .iter()
        .map(|s| PatientData {
            patient: s.id,
            train_benign: s.train_benign.clone(),
            train_malicious: s.train_malicious.clone(),
            test_benign: Vec::new(),
            test_malicious: Vec::new(),
        })
        .collect();
    // "pgd" is a registry attacker.
    let pgd = attack_by_name("pgd").expect("pgd in registry");
    let target = |ids: &[PatientId]| -> Vec<(&GlucoseForecaster, &[CgmCase])> {
        setups
            .iter()
            .filter(|s| ids.contains(&s.id))
            .map(|s| (&s.forecaster, s.train_cases.as_slice()))
            .collect()
    };
    let all_ids: Vec<PatientId> = setups.iter().map(|s| s.id).collect();
    let roast_crafter = ZooCrafter::new(pgd.as_ref(), target(&clusters.more_vulnerable), &base.zoo);
    let retrain_crafter = ZooCrafter::new(pgd.as_ref(), target(&all_ids), &base.zoo);

    // Clear retained Gram blocks (statistics survive) so each defense's
    // hit/miss delta starts from a cold cache and is reproducible even when
    // other fits ran earlier in this process.
    lgo_detect::kernel_cache_global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clear();

    // Phase 5 — fit each requested defense's ladder and score it through
    // the serve bank. Fitting is serial so cache deltas are deterministic.
    let wanted = |name: &str| config.defenses.is_empty() || config.defenses.iter().any(|d| d == name);
    let mut rows = Vec::new();
    for (di, name) in DEFENSE_NAMES.iter().enumerate() {
        if !wanted(name) {
            continue;
        }
        let selective;
        let indiscriminate;
        let roast;
        let retrain;
        let (defense, crafter): (&dyn Defense, Option<&dyn AdversarialCrafter>) = match *name {
            "lgo-selective" => {
                selective = LgoSelectiveDefense::new(TrainingStrategy::LessVulnerable);
                (&selective, None)
            }
            "indiscriminate" => {
                indiscriminate = LgoSelectiveDefense::new(TrainingStrategy::AllPatients);
                (&indiscriminate, None)
            }
            "roast" => {
                roast = RoastDefense::new(config.roast);
                (&roast, Some(&roast_crafter))
            }
            _ => {
                retrain = IterativeRetrainingDefense::new(config.retrain);
                (&retrain, Some(&retrain_crafter))
            }
        };
        let ctx = DefenseContext {
            cohort: &cohort,
            less_vulnerable: &clusters.less_vulnerable,
            more_vulnerable: &clusters.more_vulnerable,
            configs: &base.detectors,
            // Seeds pin to the unfiltered roster position so LGO_DEFENSE
            // subsets reproduce the full run's rows.
            seed: lgo_runtime::split_seed(base.zoo.seed, 0xDEF0 + di as u64),
            crafter,
        };
        let stats_before = cache_stats();
        let bank = {
            let _fit = lgo_trace::span("defense/fit_bank");
            try_fit_bank(defense, &ctx)?
        };
        let stats_after = cache_stats();
        let serve_bank = DetectorBank::new(bank.ladder());
        let levels = bank
            .levels
            .iter()
            .enumerate()
            .map(|(li, level)| {
                let det = serve_bank.at(li).as_ref();
                DefenseLevel {
                    level: li,
                    requested: level.requested.name(),
                    trained: level.trained.name(),
                    training_windows: level.training_windows,
                    fpr: recall(det, &test_benign),
                    recalls: attacker_windows
                        .iter()
                        .map(|(attacker, windows)| AttackerRecall {
                            attacker,
                            recall: recall(det, windows),
                        })
                        .collect(),
                }
            })
            .collect();
        let meta = defense.meta();
        rows.push(DefenseRow {
            name: defense.name(),
            roster: meta.roster,
            outlier_exposure: meta.outlier_exposure,
            rounds: meta.rounds,
            cache_hits: stats_after.0 - stats_before.0,
            cache_misses: stats_after.1 - stats_before.1,
            levels,
        });
    }

    lgo_trace::counter("defense/rows", rows.len() as u64);
    Ok(DefenseReport {
        eps: base.zoo.eps,
        steps: base.zoo.steps,
        roast_rounds: config.roast.rounds,
        retrain_rounds: config.retrain.rounds,
        less_vulnerable: clusters.less_vulnerable,
        more_vulnerable: clusters.more_vulnerable,
        benign_test_windows: test_benign.len(),
        attackers: attacker_windows
            .iter()
            .map(|(name, w)| (*name, w.len()))
            .collect(),
        rows,
    })
}

/// Cumulative (hits, misses) of the process-wide kernel cache.
fn cache_stats() -> (u64, u64) {
    let stats = lgo_detect::kernel_cache_global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .stats();
    (stats.hits, stats.misses)
}

/// Pooled recall over every panel attacker's windows for one row's ladder
/// level — the scalar `tests/defense.rs` compares defenses by.
pub fn pooled_recall(report: &DefenseReport, defense: &str, level: usize) -> Option<f64> {
    let row = report.row(defense)?;
    let cell = row.levels.get(level)?;
    let mut num = 0.0;
    let mut den = 0usize;
    for (r, (_, n)) in cell.recalls.iter().zip(&report.attackers) {
        if let Some(rec) = r.recall {
            num += rec * *n as f64;
            den += *n;
        }
    }
    (den > 0).then(|| num / den as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lgo_detect::MadGanConfig;
    use lgo_glucosim::Subset;

    /// Unwraps a rate with a -1 default so bit-comparisons treat "not
    /// measured" as its own value.
    fn or_neg(v: Option<f64>) -> f64 {
        v.unwrap_or(-1.0)
    }

    pub(crate) fn tiny_config() -> DefenseBenchConfig {
        let mut config = DefenseBenchConfig::fast();
        // Two patients and coarse strides keep the full study test-fast.
        config.base.patients = vec![PatientId::new(Subset::A, 2), PatientId::new(Subset::A, 5)];
        config.base.profiler.stride = 96;
        config.base.train_attack_stride = 96;
        config.base.detector_stride = 48;
        config.base.forecast.hidden = 6;
        config.base.forecast.epochs = 1;
        config.base.zoo.steps = 4;
        config.base.zoo.restarts = 2;
        config.base.detectors.madgan = MadGanConfig {
            epochs: 2,
            hidden: 6,
            inversion_steps: 3,
            ..MadGanConfig::default()
        };
        config.roast.rounds = 1; // skip crafting refits in the tiny tier
        config.retrain.rounds = 1;
        config
    }

    #[test]
    fn defense_report_covers_every_defense_and_cell() {
        let report = try_run_defense_bench(&tiny_config()).expect("tiny study should run");
        assert_eq!(report.rows.len(), 4);
        for name in DEFENSE_NAMES {
            let row = report
                .row(name)
                .unwrap_or_else(|| panic!("missing row {name}"));
            assert_eq!(row.levels.len(), 3, "{name}: ladder length");
            for level in &row.levels {
                assert_eq!(level.recalls.len(), TEST_ATTACKERS.len());
                for r in level.recalls.iter().filter_map(|r| r.recall) {
                    assert!((0.0..=1.0).contains(&r), "{name}: recall {r}");
                }
                if let Some(fpr) = level.fpr {
                    assert!((0.0..=1.0).contains(&fpr), "{name}: fpr {fpr}");
                }
            }
        }
        // Outlier exposure is flagged on exactly the two new defenses.
        assert!(report.row("roast").unwrap().outlier_exposure);
        assert!(report.row("iterative-retraining").unwrap().outlier_exposure);
        assert!(!report.row("lgo-selective").unwrap().outlier_exposure);
        // Clusters partition the cohort.
        assert_eq!(
            report.less_vulnerable.len() + report.more_vulnerable.len(),
            2
        );
    }

    #[test]
    fn defense_filter_reproduces_full_run_rows() {
        let full = try_run_defense_bench(&tiny_config()).expect("full study");
        let mut filtered_config = tiny_config();
        filtered_config.defenses = vec!["roast".into()];
        let filtered = try_run_defense_bench(&filtered_config).expect("filtered study");
        assert_eq!(filtered.rows.len(), 1);
        let a = full.row("roast").unwrap();
        let b = filtered.row("roast").unwrap();
        for (la, lb) in a.levels.iter().zip(&b.levels) {
            assert_eq!(la.trained, lb.trained);
            assert_eq!(
                or_neg(la.fpr).to_bits(),
                or_neg(lb.fpr).to_bits(),
                "fpr drifts under LGO_DEFENSE filtering"
            );
            for (ra, rb) in la.recalls.iter().zip(&lb.recalls) {
                assert_eq!(or_neg(ra.recall).to_bits(), or_neg(rb.recall).to_bits());
            }
        }
    }

    #[test]
    fn canonical_json_is_schema_stable() {
        let mut config = tiny_config();
        config.defenses = vec!["lgo-selective".into(), "roast".into()];
        let report = try_run_defense_bench(&config).expect("tiny study should run");
        let json = report.canonical_json();
        for key in [
            "\"experiment\": \"defense\"",
            "\"roast_rounds\": ",
            "\"attackers\": ",
            "\"defenses\": ",
            "\"cache_hits\": ",
            "\"levels\": ",
            "\"recalls\": ",
            "\"fpr\": ",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("NaN"), "canonical JSON must not contain NaN");
        assert_eq!(json, report.canonical_json());
    }
}
