//! Determinism and efficacy contract of the defense study, end to end.
//!
//! `exp_defense` fits every pluggable defense's detector ladder and scores
//! it against the attack-zoo test panel. These tests pin the two outermost
//! promises: the canonical-JSON report is **byte-identical** at any
//! `LGO_THREADS` (clusters, crafted windows, cache deltas, every
//! recall/FPR cell — bit for bit), and ROAST's risk-aware outlier exposure
//! beats indiscriminate training on adversarial recall for at least one
//! detector in the ladder.
//!
//! The tests mutate the process-global thread override
//! ([`lgo::runtime::set_threads`]), so both runs live in one `#[test]`
//! and the override is restored before returning.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use lgo::detect::MadGanConfig;
use lgo::glucosim::{PatientId, Subset};
use lgo::runtime::set_threads;
use lgo::zoo::defense::{pooled_recall, try_run_defense_bench, DEFENSE_NAMES};
use lgo::zoo::DefenseBenchConfig;

/// Serializes tests that mutate the process-global thread override.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A reduced defense study: two patients, coarse strides, a tiny MAD-GAN —
/// every defense still fits its full three-level ladder.
fn tiny_config() -> DefenseBenchConfig {
    let mut config = DefenseBenchConfig::fast();
    config.base.patients = vec![PatientId::new(Subset::A, 2), PatientId::new(Subset::A, 5)];
    config.base.profiler.stride = 96;
    config.base.train_attack_stride = 96;
    config.base.detector_stride = 48;
    config.base.forecast.hidden = 6;
    config.base.forecast.epochs = 1;
    config.base.zoo.steps = 4;
    config.base.zoo.restarts = 2;
    config.base.detectors.madgan = MadGanConfig {
        epochs: 2,
        hidden: 6,
        inversion_steps: 3,
        ..MadGanConfig::default()
    };
    config.retrain.rounds = 1;
    config
}

#[test]
fn defense_report_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    let config = tiny_config();
    set_threads(Some(1));
    let serial = try_run_defense_bench(&config)
        .expect("tiny defense study runs")
        .canonical_json();
    set_threads(Some(4));
    let parallel = try_run_defense_bench(&config)
        .expect("tiny defense study runs")
        .canonical_json();
    set_threads(None);
    assert_eq!(
        serial.len(),
        parallel.len(),
        "report length diverged between 1 and 4 threads"
    );
    assert!(
        serial == parallel,
        "canonical defense report at 4 threads is not byte-identical to serial"
    );
    // The report is substantive: every defense reported its full ladder.
    for name in DEFENSE_NAMES {
        assert!(
            serial.contains(&format!("\"name\": \"{name}\"")),
            "defense {name} missing from the report"
        );
    }
    assert!(serial.contains("\"fpr\""));
    assert!(serial.contains("\"cache_hits\""));
}

#[test]
fn roast_beats_indiscriminate_on_adversarial_recall() {
    let _serial_tests = override_guard();
    set_threads(Some(1));
    let report = try_run_defense_bench(&tiny_config()).expect("tiny defense study runs");
    set_threads(None);
    // ROAST must strictly improve pooled adversarial recall over
    // indiscriminate training on at least one ladder level, without its
    // FPR exceeding 1 anywhere (sanity of the trade-off columns).
    let mut improved = false;
    for level in 0..3 {
        let roast = pooled_recall(&report, "roast", level);
        let all = pooled_recall(&report, "indiscriminate", level);
        if let (Some(r), Some(a)) = (roast, all) {
            if r > a {
                improved = true;
            }
        }
    }
    assert!(
        improved,
        "roast never beat indiscriminate training on pooled adversarial recall: roast {:?} vs indiscriminate {:?}",
        (0..3).map(|l| pooled_recall(&report, "roast", l)).collect::<Vec<_>>(),
        (0..3)
            .map(|l| pooled_recall(&report, "indiscriminate", l))
            .collect::<Vec<_>>(),
    );
    for row in &report.rows {
        for level in &row.levels {
            if let Some(fpr) = level.fpr {
                assert!((0.0..=1.0).contains(&fpr), "{}: fpr {fpr}", row.name);
            }
        }
    }
}
