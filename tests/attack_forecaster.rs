//! Cross-crate integration: the URET-style attack against a real trained
//! forecaster on simulated patient data.

use lgo::attack::cgm::{attack_window, CgmAttackConfig, CgmCase, CgmManipulationConstraint};
use lgo::attack::{Constraint, GreedyExplorer};
use lgo::core::profile::ForecastModel;
use lgo::forecast::{feature_window, ForecastConfig, GlucoseForecaster, CGM_FEATURE};
use lgo::glucosim::{profile, PatientId, Simulator, Subset};
use lgo::series::MultiSeries;

fn trained_forecaster() -> (GlucoseForecaster, MultiSeries) {
    let sim = Simulator::new(profile(PatientId::new(Subset::A, 0)));
    let train = sim.run_days(4);
    let test = sim.run_days(5).slice(4 * 288, 5 * 288);
    let fc = ForecastConfig {
        hidden: 8,
        epochs: 2,
        ..ForecastConfig::default()
    };
    (GlucoseForecaster::train_personalized(&train, &fc), test)
}

#[test]
fn attack_output_satisfies_constraint_and_only_touches_cgm() {
    let (forecaster, test) = trained_forecaster();
    let fasting_flags = test.channel("fasting").unwrap();
    let cfg = CgmAttackConfig::default();
    let explorer = GreedyExplorer::new(5);
    let mut attacked = 0;
    for end in (11..test.len()).step_by(48) {
        let window = feature_window(&test, end).unwrap();
        let fasting = fasting_flags[end] == 1.0;
        let case = CgmCase {
            index: end,
            window: window.clone(),
            fasting,
        };
        let outcome = attack_window(&ForecastModel(&forecaster), &case, &explorer, &cfg);
        let constraint = CgmManipulationConstraint::from_config(&cfg, fasting);
        assert!(
            constraint.is_satisfied(&window, &outcome.result.best_input),
            "constraint violated at window {end}"
        );
        // Non-CGM features untouched.
        for (orig, adv) in window.iter().zip(&outcome.result.best_input) {
            assert_eq!(orig[1..], adv[1..]);
        }
        attacked += 1;
    }
    assert!(attacked > 3);
}

#[test]
fn forecaster_tracks_cgm_direction() {
    // The attack's premise: raising CGM history raises the prediction.
    let (forecaster, test) = trained_forecaster();
    let w = feature_window(&test, 120).unwrap();
    let base = forecaster.predict(&w);
    let mut high = w.clone();
    for row in &mut high {
        row[CGM_FEATURE] = (row[CGM_FEATURE] + 180.0).min(499.0);
    }
    assert!(
        forecaster.predict(&high) > base,
        "forecaster ignores CGM level"
    );
}

#[test]
fn maximizing_attack_is_at_least_as_harmful() {
    let (forecaster, test) = trained_forecaster();
    let fasting_flags = test.channel("fasting").unwrap();
    let cfg = CgmAttackConfig::default();
    let model = ForecastModel(&forecaster);
    for end in (11..test.len()).step_by(96) {
        let case = CgmCase {
            index: end,
            window: feature_window(&test, end).unwrap(),
            fasting: fasting_flags[end] == 1.0,
        };
        let minimal = attack_window(&model, &case, &GreedyExplorer::new(4), &cfg);
        let maximal = attack_window(&model, &case, &GreedyExplorer::maximizing(4), &cfg);
        assert!(
            maximal.result.best_output >= minimal.result.best_output - 1e-9,
            "maximizing found a weaker attack at {end}"
        );
    }
}
