//! Determinism contract of the attack zoo, end to end.
//!
//! The `exp_attack_zoo` study fans eight attackers over per-patient window
//! campaigns through `lgo_runtime::par_map`, with every random decision
//! derived from `split_seed`. This test pins the outermost consequence:
//! the canonical-JSON report of a fast-scale study is **byte-identical**
//! at any `LGO_THREADS` — same clusters, same attack successes, same
//! detector recalls, bit for bit.
//!
//! The test mutates the process-global thread override
//! ([`lgo::runtime::set_threads`]), so both runs live in one `#[test]`
//! and the override is restored before returning.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use lgo::runtime::set_threads;
use lgo::zoo::{try_run_attack_zoo, ZooExperimentConfig};

/// Serializes tests that mutate the process-global thread override.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Canonical report of a fast-scale zoo study at a fixed thread count.
fn export_at(threads: usize) -> String {
    set_threads(Some(threads));
    let report = try_run_attack_zoo(&ZooExperimentConfig::fast()).expect("fast zoo study runs");
    report.canonical_json()
}

#[test]
fn attack_zoo_report_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    let serial = export_at(1);
    let parallel = export_at(4);
    set_threads(None);
    assert_eq!(
        serial.len(),
        parallel.len(),
        "report length diverged between 1 and 4 threads"
    );
    assert!(
        serial == parallel,
        "canonical zoo report at 4 threads is not byte-identical to serial"
    );
    // The report is substantive, not vacuously equal empties: all eight
    // attackers reported against both detector configurations.
    for name in ["uret", "fgsm", "bim", "pgd", "cw", "spsa", "drift", "poison"] {
        assert!(
            serial.contains(&format!("\"name\": \"{name}\"")),
            "attacker {name} missing from the report"
        );
    }
    assert!(serial.contains("\"recall_lgo\""));
    assert!(serial.contains("\"less_vulnerable\""));
}
