//! The robustness contract of `lgo-serve`, end to end.
//!
//! Three promises from DESIGN.md §14, pinned at the workspace level:
//!
//! 1. **Determinism** — given a fixed ingest/drain interleave and no
//!    watchdog deadline, the full report (shed/degrade counters included)
//!    is byte-identical at `LGO_THREADS=1` and `4`. Scoring fan-out goes
//!    through `lgo-runtime`, whose index contract makes the schedule
//!    invisible.
//! 2. **Quarantine isolation** — an injected per-patient panic removes
//!    exactly that patient from service; every other stream keeps
//!    scoring and the process survives.
//! 3. **Bounded memory** — a producer that outruns scoring is rejected at
//!    the queue's capacity; depth never exceeds it and per-patient state
//!    stays at one window.
//!
//! Tests share process-global state (the thread override) and therefore
//! serialize on one lock.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::sync::Arc;

use lgo::detect::{AnomalyDetector, Window};
use lgo::runtime::set_threads;
use lgo::serve::{
    DetectorBank, PanickingDetector, Sample, ScoringService, ServeConfig, POISON,
};

/// Serializes tests that mutate the thread override.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Deviation of the window mean from a center — anomalous far from 100.
struct Center;

impl AnomalyDetector for Center {
    fn name(&self) -> &str {
        "center"
    }
    fn score(&self, w: &Window) -> f64 {
        let mean = w.iter().map(|r| r[0]).sum::<f64>() / w.len() as f64;
        (mean - 100.0).abs() - 40.0
    }
}

fn config() -> ServeConfig {
    ServeConfig {
        capacity: 32,
        batch_max: 8,
        seq_len: 6,
        stride: 3,
        deadline: None, // inline scoring: the deterministic mode
        ..ServeConfig::default()
    }
}

fn bank() -> DetectorBank {
    DetectorBank::new(vec![
        Arc::new(PanickingDetector::new(Center)) as Arc<dyn AnomalyDetector>,
        Arc::new(Center),
    ])
}

fn sample(patient: u64, v: f64) -> Sample {
    Sample {
        patient,
        row: vec![v, v / 2.0],
    }
}

/// A fixed, pressure-heavy interleave: bursts that cross the degrade and
/// shed thresholds, three interleaved patients, drained in micro-batches.
fn fixed_interleave() -> String {
    let svc = ScoringService::new(config(), bank());
    let mut t = 0u64;
    for burst in [4usize, 12, 32, 8, 20, 3] {
        for _ in 0..burst {
            // Rejections on the 32-burst are part of the fixture.
            let _ = svc.try_ingest(sample(t % 3, 60.0 + (t % 90) as f64));
            t += 1;
        }
        svc.drain_cycle();
    }
    while !svc.is_drained() {
        svc.drain_cycle();
    }
    svc.report().to_json()
}

#[test]
fn counters_byte_identical_at_1_and_4_threads() {
    let _guard = global_guard();
    set_threads(Some(1));
    let serial = fixed_interleave();
    set_threads(Some(4));
    let parallel = fixed_interleave();
    set_threads(None);
    assert!(
        serial == parallel,
        "serve report differs across thread counts:\n1: {serial}\n4: {parallel}"
    );
    // The fixture is substantive: it exercised backpressure, shedding and
    // degradation, not just a happy path.
    assert!(!serial.contains("\"rejected\":0,"), "report: {serial}");
    assert!(!serial.contains("\"shed_cycles\":0,"), "report: {serial}");
    assert!(!serial.contains("\"degraded_cycles\":0,"), "report: {serial}");
    assert!(!serial.contains("\"windows_scored\":0,"), "report: {serial}");
}

#[test]
fn injected_panic_quarantines_only_that_patient() {
    let _guard = global_guard();
    set_threads(Some(2));
    let svc = ScoringService::new(config(), bank());
    // Patients 0..4 healthy; patient 2 streams poisoned rows.
    for _ in 0..6 {
        for p in 0..5u64 {
            let v = if p == 2 { POISON } else { 100.0 };
            assert!(svc.try_ingest(sample(p, v)));
        }
        svc.drain_cycle();
    }
    set_threads(None);
    let report = svc.report();
    assert_eq!(report.quarantined, vec![2], "exactly the poisoned patient");
    assert_eq!(report.stats.panics, 1, "captured once, then quarantined");
    // The four healthy patients each completed one window (their 6th
    // sample) and were scored; the poisoned window was not.
    assert_eq!(report.stats.windows_scored, 4);
    // The process is alive: healthy streams keep scoring, and patient 2's
    // later samples are dropped at the door instead of reaching a model.
    for _ in 0..3 {
        for p in 0..5u64 {
            assert!(svc.try_ingest(sample(p, 200.0)));
        }
        svc.drain_cycle();
    }
    let after = svc.report();
    assert!(after.stats.windows_scored > report.stats.windows_scored);
    assert!(after.stats.anomalies > 0, "off-center values flag anomalous");
    assert_eq!(after.stats.dropped_quarantined, 3, "post-quarantine samples dropped");
    assert_eq!(after.stats.panics, 1, "no second panic from the dropped stream");
    assert_eq!(after.quarantined, vec![2], "no collateral quarantine");
}

#[test]
fn queue_memory_stays_bounded_under_runaway_producer() {
    let _guard = global_guard();
    let cfg = ServeConfig {
        capacity: 64,
        ..config()
    };
    let svc = ScoringService::new(cfg, bank());
    // A producer pushes 10k samples without any scoring: everything past
    // the queue capacity must be rejected, not buffered.
    let mut accepted = 0u64;
    for t in 0..10_000u64 {
        if svc.try_ingest(sample(t % 7, 100.0)) {
            accepted += 1;
        }
        assert!(svc.depth() <= 64, "queue depth exceeded capacity");
    }
    assert_eq!(accepted, 64, "exactly the capacity is buffered");
    let report = svc.report();
    assert_eq!(report.stats.rejected, 10_000 - 64);
    // Drain and confirm the accepted samples (and only they) come out;
    // per-patient state is one seq_len ring regardless of stream length.
    while !svc.is_drained() {
        svc.drain_cycle();
    }
    let report = svc.report();
    assert_eq!(report.stats.drained, 64);
    assert_eq!(report.stats.ingested, 64);
}
