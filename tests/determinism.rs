//! Determinism contract of the parallel runtime, end to end.
//!
//! The whole point of `lgo-runtime` is that parallelism is a pure
//! performance knob: results land by input index and per-task seeds are
//! split deterministically from the base seed, so the pipeline output is
//! **byte-identical** no matter how many worker threads run it. These
//! tests pin that contract at the outermost layer — the canonical JSON
//! export of the full five-step pipeline — and at the hottest inner
//! kernel, the O(n²) DTW distance matrix.
//!
//! The tests mutate the process-global thread override
//! ([`lgo::runtime::set_threads`]), so everything lives in one `#[test]`
//! per concern and restores the override before returning.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use lgo::core::export::canonical_json;
use lgo::core::pipeline::{try_run_pipeline, PipelineConfig};
use lgo::runtime::{set_threads, split_seed};

/// Serializes tests that mutate the process-global thread override.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Canonical export of a fast-scale pipeline run at a fixed thread count.
fn export_at(threads: usize) -> String {
    set_threads(Some(threads));
    let report = try_run_pipeline(&PipelineConfig::fast()).expect("fast pipeline runs");
    canonical_json(&report)
}

#[test]
fn pipeline_export_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    let serial = export_at(1);
    for threads in [2, 8] {
        let parallel = export_at(threads);
        assert_eq!(
            serial.len(),
            parallel.len(),
            "export length diverged at {threads} threads"
        );
        assert!(
            serial == parallel,
            "canonical export at {threads} threads is not byte-identical to serial"
        );
    }
    set_threads(None);
    // The export is substantive, not vacuously equal empties.
    assert!(serial.contains("\"profiles\""));
    assert!(serial.contains("\"evaluations\""));
}

#[test]
fn dtw_matrix_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    // Deterministic pseudo-series via the runtime's own seed splitter.
    let series: Vec<Vec<f64>> = (0..10u64)
        .map(|i| {
            (0..32u64)
                .map(|j| {
                    let bits = split_seed(0xD7A0, i * 32 + j);
                    // Map the 64-bit hash onto a bounded glucose-ish range.
                    100.0 + (bits % 1000) as f64 / 10.0
                })
                .collect()
        })
        .collect();
    set_threads(Some(1));
    let reference = lgo::cluster::dtw_distance_matrix(&series, None);
    for threads in [2, 8] {
        set_threads(Some(threads));
        let matrix = lgo::cluster::dtw_distance_matrix(&series, None);
        assert_eq!(reference.len(), matrix.len());
        for (row_ref, row) in reference.iter().zip(&matrix) {
            for (a, b) in row_ref.iter().zip(row) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "DTW entry diverged at {threads} threads"
                );
            }
        }
    }
    set_threads(None);
}

#[test]
fn pipeline_export_identical_legacy_vs_optimized_paths() {
    let _serial_tests = override_guard();
    // The perf layer (kernel cache, syrk/tiled Gram, batched scoring) is
    // a pure speedup: with it forced off, the full five-step pipeline
    // must export the same bytes — at the serial pin *and* on real
    // worker threads.
    for threads in [1, 4] {
        set_threads(Some(threads));
        let was = lgo::detect::perf::set_optimized(false);
        let legacy = canonical_json(
            &try_run_pipeline(&PipelineConfig::fast()).expect("legacy pipeline runs"),
        );
        lgo::detect::perf::set_optimized(true);
        let optimized = canonical_json(
            &try_run_pipeline(&PipelineConfig::fast()).expect("optimized pipeline runs"),
        );
        lgo::detect::perf::set_optimized(was);
        assert!(
            legacy == optimized,
            "legacy and optimized pipeline exports diverged at {threads} threads"
        );
    }
    set_threads(None);
}

#[test]
fn selective_trait_path_matches_inline_legacy_bitwise() {
    use lgo::core::selective::{
        evaluate_on_patient, train_detector_with_fallback, try_evaluate_strategy,
        try_training_rosters, DetectorConfigs, DetectorKind, PatientData, PatientMetrics,
        StrategyEvaluation, TrainingStrategy,
    };
    use lgo::glucosim::PatientId;

    let _serial_tests = override_guard();

    // The pre-refactor `try_evaluate_strategy` body, reconstructed from
    // public APIs as a serial loop (the parallel original folded in roster
    // order, so the serial replay is bit-equivalent by the runtime's
    // determinism contract). The current entry point routes through the
    // `Defense` trait; this pins that the refactor changed no bits.
    fn legacy_evaluate_strategy(
        strategy: TrainingStrategy,
        kind: DetectorKind,
        cohort: &[PatientData],
        less: &[PatientId],
        more: &[PatientId],
        configs: &DetectorConfigs,
    ) -> StrategyEvaluation {
        let ids: Vec<PatientId> = cohort.iter().map(|d| d.patient).collect();
        let rosters = try_training_rosters(strategy, &ids, less, more).expect("rosters");
        let mut sums: Vec<PatientMetrics> = vec![PatientMetrics::default(); cohort.len()];
        let mut total_windows = 0usize;
        let mut detectors_trained = Vec::new();
        for roster in &rosters {
            let mut benign = Vec::new();
            let mut malicious = Vec::new();
            for d in cohort.iter().filter(|d| roster.contains(&d.patient)) {
                benign.extend(d.train_benign.iter().cloned());
                malicious.extend(d.train_malicious.iter().cloned());
            }
            let (detector, trained) =
                train_detector_with_fallback(kind, &benign, &malicious, configs)
                    .expect("legacy training");
            total_windows += benign.len();
            detectors_trained.push(trained);
            for (s, cm) in sums
                .iter_mut()
                .zip(cohort.iter().map(|d| evaluate_on_patient(detector.as_ref(), d)))
            {
                s.recall += cm.recall();
                s.precision += cm.precision();
                s.f1 += cm.f1();
                s.fnr += cm.false_negative_rate();
                s.fpr += cm.false_positive_rate();
            }
        }
        let runs = rosters.len();
        let per_patient = cohort
            .iter()
            .zip(sums)
            .map(|(d, s)| {
                (
                    d.patient,
                    PatientMetrics {
                        recall: s.recall / runs as f64,
                        precision: s.precision / runs as f64,
                        f1: s.f1 / runs as f64,
                        fnr: s.fnr / runs as f64,
                        fpr: s.fpr / runs as f64,
                    },
                )
            })
            .collect();
        StrategyEvaluation {
            strategy,
            detector: kind,
            per_patient,
            mean_training_windows: total_windows as f64 / runs as f64,
            runs,
            detectors_trained,
        }
    }

    // A small synthetic cohort: two tight patients (the "less vulnerable"
    // cluster) and two diffuse ones, malicious windows at a fixed offset.
    let cohort: Vec<PatientData> = PatientId::all()
        .into_iter()
        .take(4)
        .enumerate()
        .map(|(pi, patient)| {
            let center = if pi < 2 { 0.0 } else { 2.0 };
            let mk = |c: f64, i: usize| vec![vec![c + (i % 7) as f64 * 0.01]; 4];
            let benign: Vec<_> = (0..30).map(|i| mk(center, i)).collect();
            let malicious: Vec<_> = (0..10).map(|i| mk(6.0, i)).collect();
            PatientData {
                patient,
                train_benign: benign.clone(),
                train_malicious: malicious.clone(),
                test_benign: benign,
                test_malicious: malicious,
            }
        })
        .collect();
    let ids = PatientId::all();
    let (less, more) = (ids[..2].to_vec(), ids[2..4].to_vec());
    let configs = DetectorConfigs::default();

    for threads in [1, 4] {
        set_threads(Some(threads));
        for strategy in [
            TrainingStrategy::LessVulnerable,
            TrainingStrategy::MoreVulnerable,
            TrainingStrategy::AllPatients,
            TrainingStrategy::RandomSamples {
                k: 2,
                runs: 3,
                seed: 7,
            },
        ] {
            let legacy =
                legacy_evaluate_strategy(strategy, DetectorKind::Knn, &cohort, &less, &more, &configs);
            let current = try_evaluate_strategy(
                strategy,
                DetectorKind::Knn,
                &cohort,
                &less,
                &more,
                &configs,
            )
            .expect("trait path evaluates");
            assert_eq!(legacy.runs, current.runs, "{strategy:?} at {threads} threads");
            assert_eq!(legacy.detectors_trained, current.detectors_trained);
            assert_eq!(
                legacy.mean_training_windows.to_bits(),
                current.mean_training_windows.to_bits()
            );
            for ((pa, ma), (pb, mb)) in legacy.per_patient.iter().zip(&current.per_patient) {
                assert_eq!(pa, pb);
                for (a, b) in [
                    (ma.recall, mb.recall),
                    (ma.precision, mb.precision),
                    (ma.f1, mb.f1),
                    (ma.fnr, mb.fnr),
                    (ma.fpr, mb.fpr),
                ] {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{strategy:?} metric diverged at {threads} threads"
                    );
                }
            }
        }
    }
    set_threads(None);
}

#[test]
fn env_override_is_respected_by_default() {
    let _serial_tests = override_guard();
    // `set_threads(None)` falls back to LGO_THREADS / hardware; whatever
    // the ambient value, an explicit override must win and report itself.
    set_threads(Some(3));
    assert_eq!(lgo::runtime::threads(), 3);
    set_threads(None);
    assert!(lgo::runtime::threads() >= 1);
}
