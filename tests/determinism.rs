//! Determinism contract of the parallel runtime, end to end.
//!
//! The whole point of `lgo-runtime` is that parallelism is a pure
//! performance knob: results land by input index and per-task seeds are
//! split deterministically from the base seed, so the pipeline output is
//! **byte-identical** no matter how many worker threads run it. These
//! tests pin that contract at the outermost layer — the canonical JSON
//! export of the full five-step pipeline — and at the hottest inner
//! kernel, the O(n²) DTW distance matrix.
//!
//! The tests mutate the process-global thread override
//! ([`lgo::runtime::set_threads`]), so everything lives in one `#[test]`
//! per concern and restores the override before returning.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use lgo::core::export::canonical_json;
use lgo::core::pipeline::{try_run_pipeline, PipelineConfig};
use lgo::runtime::{set_threads, split_seed};

/// Serializes tests that mutate the process-global thread override.
fn override_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Canonical export of a fast-scale pipeline run at a fixed thread count.
fn export_at(threads: usize) -> String {
    set_threads(Some(threads));
    let report = try_run_pipeline(&PipelineConfig::fast()).expect("fast pipeline runs");
    canonical_json(&report)
}

#[test]
fn pipeline_export_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    let serial = export_at(1);
    for threads in [2, 8] {
        let parallel = export_at(threads);
        assert_eq!(
            serial.len(),
            parallel.len(),
            "export length diverged at {threads} threads"
        );
        assert!(
            serial == parallel,
            "canonical export at {threads} threads is not byte-identical to serial"
        );
    }
    set_threads(None);
    // The export is substantive, not vacuously equal empties.
    assert!(serial.contains("\"profiles\""));
    assert!(serial.contains("\"evaluations\""));
}

#[test]
fn dtw_matrix_identical_across_thread_counts() {
    let _serial_tests = override_guard();
    // Deterministic pseudo-series via the runtime's own seed splitter.
    let series: Vec<Vec<f64>> = (0..10u64)
        .map(|i| {
            (0..32u64)
                .map(|j| {
                    let bits = split_seed(0xD7A0, i * 32 + j);
                    // Map the 64-bit hash onto a bounded glucose-ish range.
                    100.0 + (bits % 1000) as f64 / 10.0
                })
                .collect()
        })
        .collect();
    set_threads(Some(1));
    let reference = lgo::cluster::dtw_distance_matrix(&series, None);
    for threads in [2, 8] {
        set_threads(Some(threads));
        let matrix = lgo::cluster::dtw_distance_matrix(&series, None);
        assert_eq!(reference.len(), matrix.len());
        for (row_ref, row) in reference.iter().zip(&matrix) {
            for (a, b) in row_ref.iter().zip(row) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "DTW entry diverged at {threads} threads"
                );
            }
        }
    }
    set_threads(None);
}

#[test]
fn pipeline_export_identical_legacy_vs_optimized_paths() {
    let _serial_tests = override_guard();
    // The perf layer (kernel cache, syrk/tiled Gram, batched scoring) is
    // a pure speedup: with it forced off, the full five-step pipeline
    // must export the same bytes — at the serial pin *and* on real
    // worker threads.
    for threads in [1, 4] {
        set_threads(Some(threads));
        let was = lgo::detect::perf::set_optimized(false);
        let legacy = canonical_json(
            &try_run_pipeline(&PipelineConfig::fast()).expect("legacy pipeline runs"),
        );
        lgo::detect::perf::set_optimized(true);
        let optimized = canonical_json(
            &try_run_pipeline(&PipelineConfig::fast()).expect("optimized pipeline runs"),
        );
        lgo::detect::perf::set_optimized(was);
        assert!(
            legacy == optimized,
            "legacy and optimized pipeline exports diverged at {threads} threads"
        );
    }
    set_threads(None);
}

#[test]
fn env_override_is_respected_by_default() {
    let _serial_tests = override_guard();
    // `set_threads(None)` falls back to LGO_THREADS / hardware; whatever
    // the ambient value, an explicit override must win and report itself.
    set_threads(Some(3));
    assert_eq!(lgo::runtime::threads(), 3);
    set_threads(None);
    assert!(lgo::runtime::threads() >= 1);
}
