//! Cross-crate integration: the selective-training machinery on designed
//! synthetic data where the right answers are known.

use lgo::core::selective::{
    evaluate_strategy, training_rosters, DetectorConfigs, DetectorKind, PatientData,
    TrainingStrategy,
};
use lgo::detect::Window;
use lgo::glucosim::{PatientId, Subset};

/// Cohort where two "clean" patients have tight benign values and two
/// "messy" patients have benign values overlapping the malicious band —
/// the paper's Figure-6 ambiguity, distilled.
fn designed_cohort() -> (Vec<PatientData>, Vec<PatientId>, Vec<PatientId>) {
    let window = |cgm: f64| -> Window { vec![vec![cgm, 0.0, 0.0, 70.0]; 12] };
    let mut cohort = Vec::new();
    let ids = [
        PatientId::new(Subset::A, 0), // clean
        PatientId::new(Subset::A, 1), // clean
        PatientId::new(Subset::B, 0), // messy
        PatientId::new(Subset::B, 1), // messy
    ];
    for (i, &patient) in ids.iter().enumerate() {
        let messy = i >= 2;
        let mut train_benign: Vec<Window> =
            (0..60).map(|k| window(95.0 + (k % 20) as f64)).collect();
        if messy {
            // Dense benign abnormal excursions covering the malicious band.
            train_benign.extend((0..60).map(|k| window(180.0 + (k % 40) as f64)));
        }
        // Sparse malicious values just above the postprandial threshold —
        // inside the messy patients' benign band but at lower local density,
        // so majority votes flip with the training mix. Spacing is
        // irrational so no two training points tie in distance (tie-break
        // order is backend-specific).
        let malicious: Vec<Window> = (0..15)
            .map(|k| window(181.3 + i as f64 * 0.531 + k as f64 * 2.618))
            .collect();
        cohort.push(PatientData {
            patient,
            train_benign: train_benign.clone(),
            train_malicious: malicious.clone(),
            test_benign: train_benign,
            test_malicious: malicious,
        });
    }
    (cohort, ids[..2].to_vec(), ids[2..].to_vec())
}

#[test]
fn selective_training_beats_indiscriminate_on_designed_data() {
    let (cohort, less, more) = designed_cohort();
    let configs = DetectorConfigs::default();
    let lv = evaluate_strategy(
        TrainingStrategy::LessVulnerable,
        DetectorKind::Knn,
        &cohort,
        &less,
        &more,
        &configs,
    );
    let all = evaluate_strategy(
        TrainingStrategy::AllPatients,
        DetectorKind::Knn,
        &cohort,
        &less,
        &more,
        &configs,
    );
    // Trained only on clean patients, the detector flags the malicious band;
    // trained on everyone, the messy patients' benign excursions teach it to
    // pass that band.
    assert!(
        lv.mean_recall() > all.mean_recall(),
        "LV recall {} <= All recall {}",
        lv.mean_recall(),
        all.mean_recall()
    );
    // The classic trade-off: LV pays with false positives on the messy
    // patients' benign highs (its precision cannot be perfect here).
    assert!(lv.mean_precision() < 1.0);
    // And the training set is half the size.
    assert!(lv.mean_training_windows < all.mean_training_windows);
}

#[test]
fn ocsvm_shows_same_ordering_on_designed_data() {
    let (cohort, less, more) = designed_cohort();
    let configs = DetectorConfigs::default();
    let lv = evaluate_strategy(
        TrainingStrategy::LessVulnerable,
        DetectorKind::OcSvm,
        &cohort,
        &less,
        &more,
        &configs,
    );
    let all = evaluate_strategy(
        TrainingStrategy::AllPatients,
        DetectorKind::OcSvm,
        &cohort,
        &less,
        &more,
        &configs,
    );
    assert!(
        lv.mean_recall() >= all.mean_recall(),
        "LV {} < All {}",
        lv.mean_recall(),
        all.mean_recall()
    );
}

#[test]
fn rosters_honour_membership() {
    let (cohort, less, more) = designed_cohort();
    let ids: Vec<PatientId> = cohort.iter().map(|d| d.patient).collect();
    assert_eq!(
        training_rosters(TrainingStrategy::LessVulnerable, &ids, &less, &more),
        vec![less.clone()]
    );
    assert_eq!(
        training_rosters(TrainingStrategy::MoreVulnerable, &ids, &less, &more),
        vec![more.clone()]
    );
    let random = training_rosters(
        TrainingStrategy::RandomSamples {
            k: 2,
            runs: 4,
            seed: 3,
        },
        &ids,
        &less,
        &more,
    );
    assert_eq!(random.len(), 4);
    for roster in random {
        assert_eq!(roster.len(), 2);
        assert!(roster.iter().all(|p| ids.contains(p)));
    }
}
