//! Failure-injection tests: corrupted inputs, degenerate data and resource
//! caps must fail loudly (documented panics) or degrade gracefully — never
//! silently corrupt results.

use lgo::detect::{
    AnomalyDetector, Kernel, KernelSpec, KnnConfig, KnnDetector, OcSvmConfig, OneClassSvm,
};
use lgo::forecast::{ForecastConfig, GlucoseForecaster};
use lgo::series::{MinMaxScaler, MultiSeries};

#[test]
fn scaler_survives_nan_rows() {
    // A corrupted sensor reading must not poison the scaler statistics.
    let data = vec![
        vec![100.0],
        vec![f64::NAN],
        vec![200.0],
        vec![f64::INFINITY],
    ];
    let mut s = MinMaxScaler::new();
    s.fit(&data);
    assert_eq!(s.value(0, 150.0), 0.5);
}

#[test]
fn multiseries_flags_non_finite_data() {
    let mut s = MultiSeries::new(&["x"]);
    s.push_row(&[1.0]);
    assert!(!s.has_non_finite());
    s.push_row(&[f64::NAN]);
    assert!(s.has_non_finite());
}

#[test]
fn forecaster_handles_constant_channels() {
    // The simulator's basal channel is constant; scalers must not divide by
    // zero and training must stay finite.
    let mut series = MultiSeries::new(&["cgm", "bolus", "carbs", "heart_rate"]);
    for t in 0..200 {
        series.push_row(&[120.0 + (t as f64 * 0.3).sin() * 30.0, 0.0, 0.0, 70.0]);
    }
    let cfg = ForecastConfig {
        hidden: 4,
        epochs: 1,
        ..ForecastConfig::default()
    };
    let model = GlucoseForecaster::train_personalized(&series, &cfg);
    let w = lgo::forecast::feature_window(&series, 50).unwrap();
    assert!(model.predict(&w).is_finite());
}

#[test]
fn smo_iteration_cap_is_respected() {
    let windows: Vec<Vec<Vec<f64>>> = (0..60)
        .map(|i| vec![vec![(i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()]])
        .collect();
    let cfg = OcSvmConfig {
        kernel: KernelSpec::Fixed(Kernel::Rbf { gamma: 1.0 }),
        nu: 0.4,
        max_iter: Some(3),
        ..OcSvmConfig::default()
    };
    let svm = OneClassSvm::fit(&windows, &cfg);
    assert!(svm.iterations() <= 3);
    // Even a barely-optimized model must produce finite decisions.
    assert!(svm.decision_function(&vec![vec![0.0, 0.0]]).is_finite());
}

#[test]
#[should_panic(expected = "no training windows")]
fn knn_rejects_empty_training_set() {
    let _ = KnnDetector::fit(&[], &[], &KnnConfig::default());
}

#[test]
#[should_panic(expected = "series too short")]
fn forecaster_rejects_undersized_series() {
    let mut series = MultiSeries::new(&["cgm", "bolus", "carbs", "heart_rate"]);
    for _ in 0..5 {
        series.push_row(&[100.0, 0.0, 0.0, 70.0]);
    }
    let _ = GlucoseForecaster::train_personalized(&series, &ForecastConfig::default());
}

#[test]
fn detectors_score_extreme_inputs_finitely() {
    let benign: Vec<Vec<Vec<f64>>> = (0..30)
        .map(|i| vec![vec![100.0 + i as f64, 0.0, 0.0, 70.0]; 4])
        .collect();
    let malicious: Vec<Vec<Vec<f64>>> = (0..30)
        .map(|i| vec![vec![300.0 + i as f64, 0.0, 0.0, 70.0]; 4])
        .collect();
    let knn = KnnDetector::fit(&benign, &malicious, &KnnConfig::default());
    // Far outside the training range in both directions.
    for v in [0.0, 1e6, -1e6] {
        let w = vec![vec![v, 0.0, 0.0, 70.0]; 4];
        assert!(knn.score(&w).is_finite(), "knn score at {v}");
    }
}

#[test]
fn dendrogram_handles_identical_points() {
    // Zero pairwise distances must not break the merge logic.
    let points = vec![vec![1.0, 1.0]; 5];
    let d = lgo::cluster::agglomerate_points(&points, lgo::cluster::Linkage::Average);
    assert_eq!(d.merges().len(), 4);
    assert!(d.merges().iter().all(|m| m.height == 0.0));
    assert_eq!(d.cut_k(1), vec![0; 5]);
}

#[test]
fn risk_profile_rejects_corrupt_values() {
    let result = std::panic::catch_unwind(|| {
        lgo::core::risk::RiskProfile::new("x", vec![1.0, f64::NAN])
    });
    assert!(result.is_err(), "NaN risk accepted");
}
