//! Observability contract of the `trace` feature, end to end.
//!
//! lgo-trace's promise is that instrumentation is a pure observer: turning
//! it on must not change what the pipeline computes, and the deterministic
//! section of what it records (counters + histograms) must itself be
//! byte-identical at any thread count — wall-clock and scheduler data are
//! segregated under the masked `timing` key. These tests pin both halves
//! of that contract on the full five-step pipeline, plus the shape of the
//! emitted report against the bundled schema validator.
//!
//! The tests mutate process-global state (the thread override and the
//! trace registry), so each concern runs under one shared lock.
#![cfg(feature = "trace")]

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

use lgo::core::export::canonical_json;
use lgo::core::pipeline::{try_run_pipeline, PipelineConfig};
use lgo::runtime::set_threads;
use lgo::trace;

/// Serializes tests that mutate the thread override / trace registry.
fn global_guard() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Runs the fast pipeline at a thread count with tracing on; returns the
/// canonical pipeline export and the collected trace.
fn traced_run(threads: usize) -> (String, trace::TraceReport) {
    trace::set_enabled(Some(true));
    trace::reset();
    set_threads(Some(threads));
    let report = try_run_pipeline(&PipelineConfig::fast()).expect("fast pipeline runs");
    let collected = trace::snapshot();
    set_threads(None);
    trace::set_enabled(None);
    (canonical_json(&report), collected)
}

#[test]
fn trace_counters_byte_identical_across_thread_counts() {
    let _serial = global_guard();
    let (_, serial) = traced_run(1);
    let reference = serial.deterministic_json();
    for threads in [2, 8] {
        let (_, parallel) = traced_run(threads);
        assert!(
            reference == parallel.deterministic_json(),
            "deterministic trace section at {threads} threads differs from serial:\n\
             serial:\n{reference}\nparallel:\n{}",
            parallel.deterministic_json()
        );
    }

    // The trace is substantive: all five pipeline stages reported in, and
    // the runtime pool accounted for the fanned-out tasks.
    for stage in ["stage/attack", "stage/risk", "stage/profile", "stage/cluster", "stage/train"] {
        assert!(
            serial.counter(stage).is_some_and(|c| c > 0),
            "missing stage counter {stage}; counters: {:?}",
            serial.counters
        );
    }
    assert!(serial.counter("runtime/tasks").is_some_and(|c| c > 0));
    assert!(serial.counter("runtime/batches").is_some_and(|c| c > 0));
    assert!(serial.counter("detect/knn/fits").is_some_and(|c| c > 0));
    assert!(serial.has_span("stage/attack"));
}

#[test]
fn tracing_does_not_change_the_pipeline_output() {
    let _serial = global_guard();

    // Baseline: tracing force-disabled.
    trace::set_enabled(Some(false));
    trace::reset();
    set_threads(Some(2));
    let off = canonical_json(&try_run_pipeline(&PipelineConfig::fast()).expect("pipeline runs"));
    assert!(trace::snapshot().is_empty(), "disabled tracing must collect nothing");
    set_threads(None);
    trace::set_enabled(None);

    let (on, collected) = traced_run(2);
    assert!(!collected.is_empty(), "enabled tracing must collect something");
    assert!(
        off == on,
        "canonical export must be byte-identical with tracing on and off"
    );
}

#[test]
fn emitted_report_validates_against_the_schema() {
    let _serial = global_guard();
    let (_, collected) = traced_run(1);
    let json = collected.to_json("pipeline_fast");
    trace::schema::validate_trace(&json)
        .unwrap_or_else(|e| panic!("trace report fails its own schema: {e}\n{json}"));
}
