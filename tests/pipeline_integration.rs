//! Cross-crate integration tests: the five-step pipeline end to end.

use lgo::core::pipeline::{run_pipeline, PipelineConfig};
use lgo::core::selective::{DetectorKind, TrainingStrategy};

fn fast_report() -> lgo::core::pipeline::PipelineReport {
    run_pipeline(&PipelineConfig::fast())
}

#[test]
fn pipeline_is_deterministic() {
    let a = fast_report();
    let b = fast_report();
    assert_eq!(a.clusters.less_vulnerable, b.clusters.less_vulnerable);
    assert_eq!(a.clusters.more_vulnerable, b.clusters.more_vulnerable);
    for (ea, eb) in a.evaluations.iter().zip(&b.evaluations) {
        assert_eq!(ea.strategy, eb.strategy);
        assert_eq!(ea.mean_recall(), eb.mean_recall());
        assert_eq!(ea.mean_precision(), eb.mean_precision());
    }
    for (pa, pb) in a.profiles.iter().zip(&b.profiles) {
        assert_eq!(pa.risk_profile.values, pb.risk_profile.values);
    }
}

#[test]
fn clusters_partition_the_cohort() {
    let report = fast_report();
    let n = report.profiles.len();
    let mut all: Vec<_> = report
        .clusters
        .less_vulnerable
        .iter()
        .chain(&report.clusters.more_vulnerable)
        .collect();
    assert_eq!(all.len(), n);
    all.sort();
    all.dedup();
    assert_eq!(all.len(), n, "a patient appears in both clusters");
    assert!(!report.clusters.less_vulnerable.is_empty());
    assert!(!report.clusters.more_vulnerable.is_empty());
}

#[test]
fn metrics_are_valid_rates() {
    let report = fast_report();
    for e in &report.evaluations {
        for (id, m) in &e.per_patient {
            for (name, v) in [
                ("recall", m.recall),
                ("precision", m.precision),
                ("f1", m.f1),
                ("fnr", m.fnr),
                ("fpr", m.fpr),
            ] {
                assert!((0.0..=1.0).contains(&v), "{id} {name} = {v}");
            }
            // recall + fnr must equal 1 whenever the patient had positives.
            if m.recall + m.fnr > 0.0 {
                assert!((m.recall + m.fnr - 1.0).abs() < 1e-9, "{id}");
            }
        }
    }
}

#[test]
fn adversarial_windows_respect_the_threat_model() {
    let report = fast_report();
    for (data, profile) in report.cohort.iter().zip(&report.profiles) {
        assert_eq!(data.patient, profile.patient);
        for w in data.test_malicious.iter().chain(&data.train_malicious) {
            assert_eq!(w.len(), 12, "window length");
            for row in w {
                assert_eq!(row.len(), 4, "feature width");
                // CGM stays in the sensor's reporting range.
                assert!(
                    (40.0..=499.0).contains(&row[0]),
                    "cgm out of range: {}",
                    row[0]
                );
            }
        }
    }
}

#[test]
fn risk_profiles_align_with_campaigns() {
    let report = fast_report();
    for p in &report.profiles {
        assert_eq!(p.risk_profile.values.len(), p.campaign.outcomes.len());
        assert_eq!(p.success_series().len(), p.campaign.outcomes.len());
        assert!(p.risk_profile.values.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }
}

#[test]
fn evaluation_lookup_matches_config() {
    let config = PipelineConfig::fast();
    let report = run_pipeline(&config);
    assert_eq!(
        report.evaluations.len(),
        config.strategies.len() * config.detector_kinds.len()
    );
    assert!(report
        .evaluation(TrainingStrategy::LessVulnerable, DetectorKind::Knn)
        .is_some());
}
