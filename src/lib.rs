//! # lgo — Learning from the Good Ones
//!
//! A complete Rust reproduction of *"Learning from the Good Ones: Risk
//! Profiling-Based Defenses Against Evasion Attacks on DNNs"* (DSN 2025).
//!
//! This façade crate re-exports every subsystem of the workspace so that
//! downstream users can depend on a single crate:
//!
//! - [`tensor`] — dense linear algebra substrate.
//! - [`series`] — time-series windows, scalers and statistics.
//! - [`nn`] — neural networks: dense/LSTM/bidirectional-LSTM layers, losses,
//!   optimizers with full backpropagation-through-time.
//! - [`glucosim`] — ODE-based synthetic Type-1-diabetes patient simulator
//!   standing in for the gated OhioT1DM dataset.
//! - [`forecast`] — the BiLSTM blood-glucose forecaster (target DNN).
//! - [`attack`] — URET-style constrained evasion-attack framework.
//! - [`detect`] — kNN, One-Class SVM and MAD-GAN anomaly detectors.
//! - [`cluster`] — agglomerative hierarchical clustering and dendrograms.
//! - [`eval`] — confusion matrices, precision/recall/F1, box-plot stats.
//! - [`core`] — the paper's contribution: the five-step risk-profiling
//!   framework and selective-training strategies.
//! - [`trace`] — zero-cost structured observability (spans, counters,
//!   histograms) behind the `trace` cargo feature.
//! - [`serve`] — fault-tolerant online scoring service: backpressure,
//!   graded load-shedding, watchdog deadlines and patient quarantine.
//! - [`zoo`] — the attack zoo: white-box gradient (FGSM/BIM/PGD/CW),
//!   black-box (SPSA) and defense-aware adaptive attackers behind one
//!   `Attack` trait, with a unified campaign harness.
//!
//! # Examples
//!
//! ```
//! use lgo::core::severity::SeverityTable;
//! use lgo::core::state::GlucoseState;
//!
//! let table = SeverityTable::paper_default();
//! let s = table.coefficient(GlucoseState::Hypo, GlucoseState::Hyper);
//! assert_eq!(s, 64.0);
//! ```

pub use lgo_attack as attack;
pub use lgo_cluster as cluster;
pub use lgo_core as core;
pub use lgo_detect as detect;
pub use lgo_eval as eval;
pub use lgo_forecast as forecast;
pub use lgo_glucosim as glucosim;
pub use lgo_nn as nn;
pub use lgo_runtime as runtime;
pub use lgo_serve as serve;
pub use lgo_series as series;
pub use lgo_tensor as tensor;
pub use lgo_trace as trace;
pub use lgo_zoo as zoo;
