//! Quickstart: run the five-step risk-profiling pipeline end-to-end on a
//! small simulated cohort and print what the framework recommends.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lgo::core::pipeline::{run_pipeline, PipelineConfig};
use lgo::core::selective::{DetectorKind, TrainingStrategy};

fn main() {
    // The `fast` configuration: four patients, two simulated training days,
    // small models — a couple of seconds of CPU.
    let config = PipelineConfig::fast();
    println!("running the 5-step pipeline on {:?} patients ...", config.patients.as_ref().map(|p| p.len()).unwrap_or(12));
    let report = run_pipeline(&config);

    // Step 1-3: per-victim risk profiles from attack simulation.
    println!("\nstep 1-3: risk profiles");
    for p in &report.profiles {
        println!(
            "  {}: attack success {:>5.1}%, mean risk {:>10.0}",
            p.patient,
            p.success_rate().unwrap_or(0.0) * 100.0,
            p.risk_profile.mean()
        );
    }

    // Step 4: vulnerability clusters.
    println!("\nstep 4: clusters");
    println!(
        "  less vulnerable: {:?}",
        report
            .clusters
            .less_vulnerable
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "  more vulnerable: {:?}",
        report
            .clusters
            .more_vulnerable
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
    );

    // Step 5: selective vs indiscriminate training.
    println!("\nstep 5: kNN detector under the two strategies");
    for strategy in [TrainingStrategy::LessVulnerable, TrainingStrategy::AllPatients] {
        if let Some(eval) = report.evaluation(strategy, DetectorKind::Knn) {
            println!(
                "  {:<16} recall {:.3}  precision {:.3}  f1 {:.3}  ({} training windows)",
                eval.strategy.name(),
                eval.mean_recall(),
                eval.mean_precision(),
                eval.mean_f1(),
                eval.mean_training_windows
            );
        }
    }
    println!(
        "\nNote: at this smoke-test scale the forecasters are barely trained, so the\n\
         cluster assignment is illustrative only. Run the lgo-bench binaries with\n\
         LGO_SCALE=mid or LGO_SCALE=paper for the faithful reproduction."
    );
}
