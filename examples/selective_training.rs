//! Selective-training comparison using the framework's mid-level API:
//! build detector data yourself, supply your own cluster assignment, and
//! evaluate any strategy × detector combination.
//!
//! ```text
//! cargo run --release --example selective_training
//! ```

use lgo::core::pipeline::{benign_windows, PipelineConfig};
use lgo::core::profile::{profile_patient, ProfilerConfig};
use lgo::core::selective::{
    evaluate_strategy, DetectorConfigs, DetectorKind, PatientData, TrainingStrategy,
};
use lgo::forecast::GlucoseForecaster;
use lgo::glucosim::{generate_cohort_sized, PatientId, Subset};

fn main() {
    let config = PipelineConfig::fast();
    let patients = [
        PatientId::new(Subset::A, 2),
        PatientId::new(Subset::A, 5),
        PatientId::new(Subset::B, 2),
        PatientId::new(Subset::B, 4),
    ];

    // Build detector-facing data per patient (benign windows + adversarial
    // windows from the attack campaign).
    println!("simulating patients and running attack campaigns ...");
    let mut cohort = Vec::new();
    for d in generate_cohort_sized(3, 1)
        .into_iter()
        .filter(|d| patients.contains(&d.profile.id))
    {
        let forecaster = GlucoseForecaster::train_personalized(&d.train, &config.forecast);
        let minimal = ProfilerConfig {
            maximize: false,
            stride: 24,
            ..ProfilerConfig::default()
        };
        let train_campaign = profile_patient(&forecaster, d.profile.id, &d.train, &minimal);
        let test_campaign = profile_patient(&forecaster, d.profile.id, &d.test, &minimal);
        cohort.push(PatientData {
            patient: d.profile.id,
            train_benign: benign_windows(&d.train, 12, 8),
            train_malicious: train_campaign.manipulated_windows(),
            test_benign: benign_windows(&d.test, 12, 8),
            test_malicious: test_campaign.manipulated_windows(),
        });
    }

    // Suppose risk profiling identified A_5 and B_2 as less vulnerable
    // (this example supplies the assignment directly; `run_pipeline` derives
    // it from the dendrograms).
    let less = vec![PatientId::new(Subset::A, 5), PatientId::new(Subset::B, 2)];
    let more = vec![PatientId::new(Subset::A, 2), PatientId::new(Subset::B, 4)];

    println!("\nkNN and OneClassSVM under every strategy:");
    for kind in [DetectorKind::Knn, DetectorKind::OcSvm] {
        for strategy in [
            TrainingStrategy::LessVulnerable,
            TrainingStrategy::MoreVulnerable,
            TrainingStrategy::RandomSamples {
                k: 2,
                runs: 3,
                seed: 7,
            },
            TrainingStrategy::AllPatients,
        ] {
            let eval = evaluate_strategy(
                strategy,
                kind,
                &cohort,
                &less,
                &more,
                &DetectorConfigs::default(),
            );
            println!(
                "  {:<12} {:<16} recall {:.3}  precision {:.3}  f1 {:.3}",
                kind.name(),
                strategy.name(),
                eval.mean_recall(),
                eval.mean_precision(),
                eval.mean_f1()
            );
        }
    }
}
