//! Plugging a custom anomaly detector into the framework.
//!
//! The framework's evaluation machinery works with any type implementing
//! `lgo::detect::AnomalyDetector`. This example adds a naive physiological
//! rate-of-change detector (glucose cannot move faster than ~5 mg/dL per
//! minute) and evaluates it next to the built-in kNN.
//!
//! ```text
//! cargo run --release --example custom_detector
//! ```

use lgo::core::pipeline::{run_pipeline, PipelineConfig};
use lgo::core::selective::evaluate_on_patient;
use lgo::detect::{AnomalyDetector, Window};

/// Flags windows whose CGM channel changes faster than a physiological
/// rate limit — a classic hand-written plausibility check.
struct RateOfChangeDetector {
    /// Maximum plausible change between consecutive 5-minute samples.
    max_step: f64,
}

impl AnomalyDetector for RateOfChangeDetector {
    fn name(&self) -> &str {
        "rate-of-change"
    }

    /// Score: largest consecutive CGM jump minus the limit (positive =
    /// anomalous).
    fn score(&self, window: &Window) -> f64 {
        let cgm: Vec<f64> = window.iter().map(|r| r[0]).collect();
        let max_jump = cgm
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0, f64::max);
        max_jump - self.max_step
    }
}

fn main() {
    // Reuse the pipeline to generate realistic benign + adversarial data.
    let report = run_pipeline(&PipelineConfig::fast());
    let detector = RateOfChangeDetector { max_step: 35.0 };

    println!("rate-of-change detector vs attack campaigns:");
    let mut pooled = lgo::eval::ConfusionMatrix::default();
    for data in &report.cohort {
        let cm = evaluate_on_patient(&detector, data);
        println!(
            "  {}: recall {:.3}  precision {:.3}  ({} malicious, {} benign windows)",
            data.patient,
            cm.recall(),
            cm.precision(),
            data.test_malicious.len(),
            data.test_benign.len()
        );
        pooled = pooled + cm;
    }
    println!("\npooled: {pooled}");
    println!(
        "\nA pure rate check catches crude manipulations but costs false positives\n\
         on sensor artifacts, and a careful adversary can ramp values slowly —\n\
         which is why the paper trains statistical detectors instead."
    );
}
