//! A single evasion attack on a blood glucose management system, end to
//! end: simulate a patient, train their personalized forecaster, intercept
//! one CGM window and manipulate it until the model misdiagnoses
//! hyperglycemia.
//!
//! ```text
//! cargo run --release --example bgms_attack
//! ```

use lgo::attack::cgm::{attack_window, CgmAttackConfig, CgmCase};
use lgo::attack::GreedyExplorer;
use lgo::core::profile::ForecastModel;
use lgo::forecast::{feature_window, ForecastConfig, GlucoseForecaster};
use lgo::glucosim::{profile, PatientId, Simulator, Subset};

fn main() {
    // Simulate ten days of patient A_0 and train their forecaster.
    let id = PatientId::new(Subset::A, 0);
    let sim = Simulator::new(profile(id));
    let train = sim.run_days(8);
    let test = sim.run_days(10).slice(8 * 288, 10 * 288);
    println!("training the personalized BiLSTM forecaster for {id} ...");
    let forecaster = GlucoseForecaster::train_personalized(
        &train,
        &ForecastConfig {
            epochs: 3,
            ..ForecastConfig::default()
        },
    );
    println!("test RMSE: {:.1} mg/dL", forecaster.rmse(&test));

    // Pick a mid-day window and attack it.
    let end = 150;
    let window = feature_window(&test, end).expect("window in range");
    let fasting = test.channel("fasting").expect("fasting channel")[end] == 1.0;
    let benign_pred = forecaster.predict(&window);
    println!(
        "\nwindow ending at sample {end} ({}): benign prediction {:.1} mg/dL",
        if fasting { "fasting" } else { "postprandial" },
        benign_pred
    );

    let cfg = CgmAttackConfig::default();
    let outcome = attack_window(
        &ForecastModel(&forecaster),
        &CgmCase {
            index: end,
            window: window.clone(),
            fasting,
        },
        &GreedyExplorer::new(6),
        &cfg,
    );
    println!(
        "attack: achieved = {}, adversarial prediction {:.1} mg/dL ({} model queries, {} edits)",
        outcome.result.achieved, outcome.result.best_output, outcome.result.queries, outcome.result.steps
    );

    // Show exactly what the adversary changed.
    println!("\nCGM channel before/after (last 6 of 12 samples):");
    for (t, sample) in window.iter().enumerate().take(12).skip(6) {
        let before = sample[0];
        let after = outcome.result.best_input[t][0];
        let marker = if (before - after).abs() > 1e-9 { "  <-- manipulated" } else { "" };
        println!("  t-{:<2} {:>6.1} -> {:>6.1}{marker}", 11 - t, before, after);
    }
    println!(
        "\nthe manipulated values stay within the physiological range the paper\n\
         allows ({}-499 mg/dL here), so a range check alone cannot catch this.",
        cfg.threshold(fasting)
    );
}
