//! The paper's future-work extension in action: an adaptive risk profiler
//! that re-assesses the cohort as new data arrives and reports when the
//! vulnerability clusters drift enough to warrant retraining the
//! detectors.
//!
//! To make drift visible, one patient's behaviour improves between epochs
//! (simulating recovery — the example the paper's §V gives for why a
//! static profiler goes stale).
//!
//! ```text
//! cargo run --release --example adaptive_defense
//! ```

use lgo::cluster::Linkage;
use lgo::core::adaptive::AdaptiveProfiler;
use lgo::core::profile::ProfilerConfig;
use lgo::forecast::{ForecastConfig, GlucoseForecaster};
use lgo::glucosim::{profile, PatientId, Simulator, Subset};
use lgo::series::MultiSeries;

fn main() {
    let ids = [
        PatientId::new(Subset::A, 2),
        PatientId::new(Subset::A, 5),
        PatientId::new(Subset::B, 2),
        PatientId::new(Subset::B, 4),
    ];
    let fc = ForecastConfig {
        hidden: 8,
        epochs: 2,
        ..ForecastConfig::default()
    };

    // Epoch 0: everyone on their usual behaviour.
    println!("training forecasters and profiling epoch 0 ...");
    let mut models: Vec<(GlucoseForecaster, MultiSeries)> = ids
        .iter()
        .map(|&id| {
            let sim = Simulator::new(profile(id));
            let data = sim.run_days(3);
            (GlucoseForecaster::train_personalized(&data, &fc), data)
        })
        .collect();

    let mut profiler = AdaptiveProfiler::new(
        ProfilerConfig {
            stride: 24,
            explorer_steps: 3,
            ..ProfilerConfig::default()
        },
        Linkage::Average,
    );
    let cohort: Vec<_> = ids
        .iter()
        .zip(&models)
        .map(|(&id, (f, s))| (id, f, s))
        .collect();
    let epoch0 = profiler.reassess(&cohort);
    print_epoch(epoch0);

    // Epoch 1: patient A_2 recovers — tighter habits, fewer missed boluses
    // (we model recovery by giving them the disciplined A_5 phenotype while
    // keeping their identity).
    println!("\npatient A_2 adopts disciplined habits; profiling epoch 1 ...");
    let mut recovered = profile(PatientId::new(Subset::A, 5));
    recovered.id = PatientId::new(Subset::A, 2);
    recovered.seed ^= 0xD1F7;
    let sim = Simulator::new(recovered);
    let data = sim.run_days(3);
    models[0] = (GlucoseForecaster::train_personalized(&data, &fc), data);

    let cohort: Vec<_> = ids
        .iter()
        .zip(&models)
        .map(|(&id, (f, s))| (id, f, s))
        .collect();
    let epoch1 = profiler.reassess(&cohort);
    print_epoch(epoch1);

    println!("\nmembership changes: {:?}", profiler.membership_changes());
    println!("stability: {:?}", profiler.stability());
    println!("retraining due: {}", profiler.retraining_due());
}

fn print_epoch(record: &lgo::core::adaptive::EpochRecord) {
    println!("epoch {}:", record.epoch);
    for p in &record.profiles {
        println!(
            "  {}: attack success {:>5.1}%",
            p.patient,
            p.success_rate().unwrap_or(1.0) * 100.0
        );
    }
    let names = |ids: &[PatientId]| {
        ids.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    };
    println!(
        "  less vulnerable: [{}]",
        names(&record.clusters.less_vulnerable)
    );
}

